//! The event-loop diet: wake-chain amplification must stay dead.
//!
//! Before PR 4, every "earlier wake" push left the superseded later wake in
//! the queue, and each of those no-op wakes re-armed the chain on delivery —
//! ~95 % of all simulation events in the fleet scenario were redundant
//! `WorkerWake`s (~29 M of 30.5 M). With cancellable wake/tick handles the
//! loop schedules at most one wake per worker and one tick, superseding
//! stale entries via `EventQueue::cancel`. These tests pin the diet down:
//! the no-op-wake ratio is bounded, wakes no longer dominate the event
//! stream, and the event-mix counters obey their conservation identity.

use clockwork::prelude::*;

fn run_fleet_smoke(seed: u64) -> ServingSystem {
    let zoo = ModelZoo::new();
    let duration = Nanos::from_secs(10);
    let config = AzureTraceConfig {
        functions: 80,
        models: 20,
        duration,
        target_rate: 400.0,
        slo: Nanos::from_millis(100),
        seed,
    };
    let trace = AzureTraceGenerator::new(config).generate();
    let mut system = SystemBuilder::new()
        .workers(4)
        .gpus_per_worker(2)
        .seed(seed)
        .drop_raw_responses()
        .build();
    let varieties = zoo.all();
    for i in 0..config.models {
        system.register_model(&varieties[i % varieties.len()]);
    }
    system.submit_trace(&trace);
    system.run_to_completion();
    system
}

#[test]
fn noop_wake_ratio_is_bounded() {
    let system = run_fleet_smoke(7);
    let mix = system.telemetry().event_mix();
    let delivered = mix.delivered();
    assert!(delivered > 10_000, "scenario too small to be meaningful");
    // The satellite bound: WorkerWakes that found nothing actionable must be
    // a small fraction of all delivered events, not the 95 % of the
    // amplified chain.
    let noop_ratio = mix.noop_wakes() as f64 / delivered as f64;
    assert!(
        noop_ratio < 0.10,
        "no-op wakes are {:.1}% of {delivered} delivered events (limit 10%)",
        noop_ratio * 100.0
    );
    // Wakes as a whole must no longer dominate the event stream.
    let wakes = mix.entry("worker_wake").expect("wake kind exists");
    let wake_ratio = wakes.delivered as f64 / delivered as f64;
    assert!(
        wake_ratio < 0.50,
        "worker wakes are {:.1}% of delivered events — amplification is back",
        wake_ratio * 100.0
    );
}

#[test]
fn event_mix_obeys_conservation_and_matches_the_queue() {
    let system = run_fleet_smoke(7);
    let mix = system.telemetry().event_mix();
    // pushed == delivered + cancelled + live, per the mix...
    assert_eq!(
        mix.pushed(),
        mix.delivered() + mix.cancelled() + system.pending_events(),
        "event-mix conservation identity violated"
    );
    // ...and the per-kind mix must account for every push/pop/cancel the
    // queue itself saw (no uninstrumented push site).
    let (pushed, delivered, cancelled) = system.queue_counters();
    assert_eq!(mix.pushed(), pushed, "a push site is missing from the mix");
    assert_eq!(mix.delivered(), delivered);
    assert_eq!(mix.cancelled(), cancelled);
    assert_eq!(mix.delivered(), system.events_processed());
    // Only self-scheduled events (wakes, ticks) are ever cancelled.
    for entry in mix.entries() {
        if entry.kind != "worker_wake" && entry.kind != "scheduler_tick" {
            assert_eq!(entry.cancelled, 0, "{} events were cancelled", entry.kind);
        }
    }
    // A drained run leaves nothing live.
    assert_eq!(system.pending_events(), 0, "run_to_completion drained");
}

#[test]
fn the_diet_does_not_change_serving_outcomes_accounting() {
    // Cancelling redundant wakes removes events, not work: every request
    // still gets exactly one response.
    let system = run_fleet_smoke(7);
    let m = system.telemetry().metrics();
    let rejected: u64 = m.rejections.values().sum();
    assert_eq!(
        m.successes + rejected,
        m.total_requests,
        "successes + rejected must equal total"
    );
    assert!(m.satisfaction() > 0.5, "the fleet still serves its load");
}
