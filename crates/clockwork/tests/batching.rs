//! Facade-level guarantees of batch-aware scheduling.
//!
//! Batch formation and batch-amortized admission must be *inert* until load
//! actually creates a backlog: at low rates every strategy queue resolves
//! to batch 1 and every admission backlog is empty, so the batching and
//! non-batching schedulers must make byte-identical decisions — pinned here
//! by comparing their full response digests on the same low-rate scenario.
//! Under a genuine overload the relationship inverts: batching must serve
//! strictly more goodput than the size-1 path on identical offered load,
//! the in-simulator version of the saturation knee bending rightward.

use clockwork::prelude::*;

/// A light scenario: 4 workers × 2 GPUs at a rate the cluster absorbs
/// without queueing, so batch formation always resolves to batch 1.
fn low_load_spec(seed: u64) -> ScenarioSpec {
    let mut spec = ScenarioSpec::smoke(seed).named("batching_low_load");
    // ~10 r/s across 8 GPUs of zoo models leaves queues empty at dispatch
    // even through the trace's bursts, so no batch ever has 2 candidates.
    spec.workload = WorkloadSpec::Azure {
        functions: 10,
        target_rate: 10.0,
    };
    spec
}

#[test]
fn batching_is_digest_identical_to_unbatched_at_low_load() {
    let experiment = Experiment::new(low_load_spec(11));
    let with_batching = experiment.run(&ClockworkFactory::default());
    let without = experiment.run(&ClockworkNoBatchFactory::default());
    assert!(with_batching.drained() && without.drained());
    assert_eq!(
        with_batching.digest(),
        without.digest(),
        "batch size 1 everywhere must reproduce the unbatched decision \
         stream byte-for-byte: {:016x} vs {:016x}",
        with_batching.digest(),
        without.digest()
    );
    // Digest equality subsumes these, but state the serving facts plainly.
    let (a, b) = (with_batching.metrics(), without.metrics());
    assert_eq!(a.total_requests, b.total_requests);
    assert_eq!(a.goodput, b.goodput);
    assert_eq!(with_batching.rejected(), without.rejected());
}

#[test]
fn batching_outserves_unbatched_under_overload() {
    // The smoke fleet at 5× its nominal rate: far past what batch-1
    // dispatch sustains. Identical workload, identical seed — the only
    // difference is batch formation + amortized admission.
    let spec = ScenarioSpec::smoke(5)
        .named("batching_overload")
        .with_rate_multiplier(5.0);
    let experiment = Experiment::new(spec);
    let with_batching = experiment.run(&ClockworkFactory::default());
    let without = experiment.run(&ClockworkNoBatchFactory::default());
    for report in [&with_batching, &without] {
        assert!(report.mix_conserved(), "event conservation must hold");
        assert!(!report.overdelivered(), "no duplicate responses");
        if report.drained() {
            assert!(report.identity_ok(), "successes + rejected == total");
        }
    }
    let (a, b) = (with_batching.metrics(), without.metrics());
    assert!(
        a.goodput > b.goodput,
        "batching must out-serve batch-1 under overload: {} vs {}",
        a.goodput,
        b.goodput
    );
    assert!(
        a.mean_batch > 1.05,
        "overload must actually form batches (mean batch {:.3})",
        a.mean_batch
    );
}

#[test]
fn rate_multiplier_scales_offered_load() {
    let base = ScenarioSpec::smoke(3);
    let doubled = ScenarioSpec::smoke(3).with_rate_multiplier(2.0);
    let (r1, r2) = match (base.workload, doubled.workload) {
        (
            WorkloadSpec::Azure { target_rate: a, .. },
            WorkloadSpec::Azure { target_rate: b, .. },
        ) => (a, b),
        other => panic!("smoke is an Azure workload, got {other:?}"),
    };
    assert_eq!(r2, r1 * 2.0);
    // The generated trace really carries ~2× the requests.
    let n1 = base.azure_trace().expect("azure").len();
    let n2 = doubled.azure_trace().expect("azure").len();
    assert!(
        (n2 as f64) > 1.7 * n1 as f64 && (n2 as f64) < 2.3 * n1 as f64,
        "expected ~2x requests, got {n1} -> {n2}"
    );
}
