//! Integration tests comparing serving disciplines on the same substrate.

use clockwork::prelude::*;
use clockwork_baselines::{ClipperConfig, InfaasConfig};

fn run_closed_loop(
    kind: SchedulerKind,
    copies: usize,
    slo_ms: u64,
    seconds: u64,
) -> ExperimentMetrics {
    let zoo = ModelZoo::new();
    let mut system = SystemBuilder::new()
        .scheduler(kind)
        .seed(300)
        .drop_raw_responses()
        .build();
    let ids = system.register_copies(zoo.resnet50(), copies);
    for (i, &m) in ids.iter().enumerate() {
        system.add_closed_loop_client(
            ClosedLoopClient::new(m, 16, Nanos::from_millis(slo_ms)),
            Timestamp::from_millis(i as u64),
        );
    }
    system.run_until(Timestamp::from_secs(seconds));
    system.telemetry().metrics()
}

#[test]
fn all_disciplines_serve_a_light_workload() {
    for kind in [
        SchedulerKind::default(),
        SchedulerKind::Fifo,
        SchedulerKind::Clipper(ClipperConfig::default()),
        SchedulerKind::Infaas(InfaasConfig::default()),
    ] {
        let label = kind.label();
        let m = run_closed_loop(kind, 2, 500, 3);
        assert!(m.successes > 500, "{label}: successes {}", m.successes);
        assert!(
            m.satisfaction() > 0.5,
            "{label}: satisfaction {}",
            m.satisfaction()
        );
    }
}

#[test]
fn clockwork_beats_baselines_at_tight_slos() {
    // The Fig. 5 headline: below ~100 ms SLO the reactive baselines' goodput
    // collapses while Clockwork keeps serving.
    let clockwork = run_closed_loop(SchedulerKind::default(), 15, 50, 8);
    let clipper = run_closed_loop(SchedulerKind::Clipper(ClipperConfig::default()), 15, 50, 8);
    let infaas = run_closed_loop(SchedulerKind::Infaas(InfaasConfig::default()), 15, 50, 8);
    assert!(
        clockwork.goodput_rate() > clipper.goodput_rate(),
        "clockwork {} vs clipper {}",
        clockwork.goodput_rate(),
        clipper.goodput_rate()
    );
    assert!(
        clockwork.goodput_rate() > infaas.goodput_rate(),
        "clockwork {} vs infaas {}",
        clockwork.goodput_rate(),
        infaas.goodput_rate()
    );
    assert!(
        clockwork.satisfaction() > clipper.satisfaction(),
        "clockwork {} vs clipper {}",
        clockwork.satisfaction(),
        clipper.satisfaction()
    );
}

#[test]
fn baselines_tail_latency_exceeds_slo_under_pressure() {
    // Clipper keeps executing late requests, so its p99 blows through the SLO;
    // Clockwork's stays pinned near it.
    let slo_ms = 50u64;
    let clockwork = run_closed_loop(SchedulerKind::default(), 15, slo_ms, 6);
    let clipper = run_closed_loop(
        SchedulerKind::Clipper(ClipperConfig::default()),
        15,
        slo_ms,
        6,
    );
    let cw_p99 = clockwork.latency.percentile(99.0).as_millis_f64();
    let cl_p99 = clipper.latency.percentile(99.0).as_millis_f64();
    assert!(
        cw_p99 <= slo_ms as f64 + 5.0,
        "clockwork p99 {cw_p99} should stay near the {slo_ms} ms SLO"
    );
    assert!(
        cl_p99 > cw_p99,
        "clipper p99 {cl_p99} vs clockwork p99 {cw_p99}"
    );
}
