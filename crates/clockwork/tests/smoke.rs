//! End-to-end smoke test: the smallest meaningful full-system scenario,
//! mirroring the crate-level quick-start doctest. If this fails, everything
//! downstream (figures, property suites, baselines) is suspect.

use clockwork::prelude::*;

/// One worker, three copies of ResNet50, open-loop Poisson clients at
/// 100 r/s per copy with a 100 ms SLO for two virtual seconds. The run must
/// complete, serve every submitted request, and meet the SLO almost always.
#[test]
fn single_worker_resnet50_open_loop_smoke() {
    let mut system = SystemBuilder::new()
        .workers(1)
        .discipline(Box::new(ClockworkFactory::default()))
        .seed(1)
        .build();

    let zoo = ModelZoo::new();
    let models = system.register_copies(zoo.resnet50(), 3);
    assert_eq!(models.len(), 3);

    let trace = OpenLoopClient::generate_many(
        &models,
        100.0,
        Nanos::from_millis(100),
        Nanos::from_secs(2),
        &mut SimRng::seeded(1),
    );
    let total = trace.len() as u64;
    assert!(total > 0, "open-loop generator must emit requests");

    system.submit_trace(&trace);
    system.run_to_completion();

    let m = system.telemetry().metrics();
    assert_eq!(
        m.total_requests, total,
        "every submitted request must be accounted for"
    );
    assert!(
        m.satisfaction() > 0.99,
        "single-worker ResNet50 at 300 r/s aggregate must meet a 100 ms SLO: \
         satisfaction {} over {} requests",
        m.satisfaction(),
        total
    );
}
