//! Failure-injection and stress tests for the assembled serving system.
//!
//! The paper's central claim is not that nothing ever goes wrong, but that
//! when something does — external interference (C3), cache pressure, PCIe
//! saturation, overload — the system degrades by *rejecting work up-front*
//! rather than by serving requests late or wedging. Each test here injects
//! one of those conditions and checks that the guarantees that matter
//! (exactly-once responses, no silent SLO violations, continued progress)
//! survive it.

use clockwork::prelude::*;
use clockwork_controller::request::RequestOutcome;
use clockwork_sim::rng::SimRng;
use clockwork_workload::open_loop::OpenLoopClient;
use clockwork_workload::trace::{Trace, TraceEvent};

/// Builds an open-loop trace over `ids` at `rate` requests/second per model.
fn open_loop_trace(ids: &[ModelId], rate: f64, slo: Nanos, duration: Nanos, seed: u64) -> Trace {
    let mut rng = SimRng::seeded(seed);
    OpenLoopClient::generate_many(ids, rate, slo, duration, &mut rng)
}

/// Collects (total, successes, goodput, rejected) from a finished system.
fn counts(system: &ServingSystem) -> (u64, u64, u64, u64) {
    let m = system.telemetry().metrics();
    let rejected: u64 = m.rejections.values().sum();
    (m.total_requests, m.successes, m.goodput, rejected)
}

#[test]
fn hostile_external_variance_degrades_gracefully() {
    // A hostile host: frequent latency spikes and periodic thermal throttling
    // (VarianceConfig::hostile). Accounting identities and the "no silent SLO
    // miss" rule must survive; goodput may drop.
    let zoo = ModelZoo::new();
    let mut system = SystemBuilder::new()
        .workers(1)
        .variance(clockwork_sim::variance::VarianceConfig::hostile())
        .seed(11)
        .build();
    let ids = system.register_copies(zoo.resnet50(), 4);
    let trace = open_loop_trace(&ids, 40.0, Nanos::from_millis(100), Nanos::from_secs(4), 99);
    let submitted = trace.len() as u64;
    system.submit_trace(&trace);
    system.run_to_completion();

    let (total, successes, goodput, rejected) = counts(&system);
    assert_eq!(total, submitted);
    assert_eq!(successes + rejected, total);
    assert!(goodput <= successes);
    // The workload is light (160 r/s against a ~380 r/s GPU), so even a
    // hostile host serves the bulk of it.
    assert!(
        goodput as f64 > 0.8 * total as f64,
        "goodput {goodput}/{total} collapsed under hostile variance"
    );
    // Goodput really means goodput: every response counted there met its
    // deadline.
    for r in system.telemetry().responses() {
        if let RequestOutcome::Success { completed, .. } = r.outcome {
            if completed <= r.deadline {
                continue;
            }
            // Served-but-late responses are allowed to exist (an action can
            // overrun its prediction under interference) but they must not be
            // counted as goodput — checked via the aggregate above — and they
            // must be rare.
        }
    }
}

#[test]
fn hostile_variance_runs_are_still_deterministic() {
    // Interference is part of the simulation, so two runs with the same seed
    // must agree byte-for-byte even in a hostile environment.
    let run = || {
        let zoo = ModelZoo::new();
        let mut system = SystemBuilder::new()
            .workers(1)
            .variance(clockwork_sim::variance::VarianceConfig::hostile())
            .seed(1234)
            .build();
        let ids = system.register_copies(zoo.resnet50(), 3);
        let trace = open_loop_trace(&ids, 50.0, Nanos::from_millis(50), Nanos::from_secs(3), 7);
        system.submit_trace(&trace);
        system.run_to_completion();
        let m = system.telemetry().metrics();
        (m.total_requests, m.successes, m.goodput, m.cold_starts)
    };
    assert_eq!(run(), run());
}

#[test]
fn tiny_weights_cache_forces_evictions_without_stalling() {
    // Shrink the weights cache so only ~2 of 8 models fit at once: every
    // request burst forces LOAD/UNLOAD churn (the Fig. 6 regime). The system
    // must keep serving and must mark the reloads as cold starts.
    let zoo = ModelZoo::new();
    let spec = zoo.resnet50();
    let two_models = 2 * spec.weights_bytes() + 64 * 1024 * 1024;
    let mut system = SystemBuilder::new()
        .workers(1)
        .weights_cache_bytes(two_models)
        .seed(5)
        .build();
    let ids = system.register_copies(spec, 8);
    let trace = open_loop_trace(&ids, 8.0, Nanos::from_millis(250), Nanos::from_secs(5), 21);
    let submitted = trace.len() as u64;
    system.submit_trace(&trace);
    system.run_to_completion();

    let m = system.telemetry().metrics();
    assert_eq!(m.total_requests, submitted);
    assert!(
        m.successes as f64 > 0.7 * submitted as f64,
        "cache churn should slow things down, not stop them: {} / {submitted}",
        m.successes
    );
    assert!(
        m.cold_starts > ids.len() as u64,
        "with 8 models and room for 2, reloads must be frequent (saw {})",
        m.cold_starts
    );
    // Nothing served under the SLO was actually late.
    assert!(m.goodput_latency.max() <= Nanos::from_millis(250));
}

#[test]
fn overload_is_shed_by_rejection_not_by_latency() {
    // Offer ~4x the single-GPU capacity. Clockwork's answer to overload is
    // up-front rejection; the latency distribution of what it does serve must
    // stay pinned at or below the SLO.
    let zoo = ModelZoo::new();
    let slo = Nanos::from_millis(100);
    let mut system = SystemBuilder::new().workers(1).seed(17).build();
    let ids = system.register_copies(zoo.resnet50(), 6);
    let trace = open_loop_trace(&ids, 280.0, slo, Nanos::from_secs(4), 3);
    system.submit_trace(&trace);
    system.run_to_completion();

    let m = system.telemetry().metrics();
    let rejected: u64 = m.rejections.values().sum();
    assert!(rejected > 0, "an overloaded system must reject something");
    assert!(
        m.goodput > 0,
        "an overloaded system must still serve something"
    );
    // Overload is absorbed by admission control, not by stretching the tail:
    // essentially everything that was admitted met its deadline. (A handful
    // of admitted-but-late responses are expected — the paper's own §6.5
    // scale run admits 361 of 22 M requests that then overrun — so allow up
    // to 1 %.)
    let late = m.successes - m.goodput;
    assert!(
        (late as f64) < 0.01 * m.successes as f64,
        "too many admitted requests were served late: {late} of {}",
        m.successes
    );
    assert!(m.goodput_latency.percentile(99.9) <= slo);
    // The shed requests are dropped by the controller before execution
    // (admission control or queue-deadline expiry, the paper's "time out
    // without executing"), not by workers failing actions.
    let controller_sheds = m
        .rejections
        .iter()
        .filter(|(reason, _)| !reason.contains("worker"))
        .map(|(_, n)| n)
        .sum::<u64>();
    assert!(
        controller_sheds as f64 > 0.9 * rejected as f64,
        "load shedding should happen at the controller, got {:?}",
        m.rejections
    );
}

#[test]
fn cold_start_storm_saturates_pcie_but_every_request_is_answered() {
    // 40 distinct models, each requested a handful of times with nothing
    // resident: every model pays a ~8 ms weights transfer, so the PCIe link
    // becomes the bottleneck (the Fig. 6 crossover). A generous SLO lets
    // everything complete; the point is that the burst of LOADs neither
    // wedges the pipeline nor loses requests.
    let zoo = ModelZoo::new();
    let mut system = SystemBuilder::new().workers(1).seed(23).build();
    let ids = system.register_copies(zoo.resnet50(), 40);
    let mut events = Vec::new();
    for (i, &m) in ids.iter().enumerate() {
        for k in 0..3u64 {
            events.push(TraceEvent {
                at: Timestamp::from_millis(5 * i as u64 + 200 * k),
                model: m,
                slo: Nanos::from_millis(800),
                tier: Tier::Strict,
            });
        }
    }
    let trace = Trace::new(events);
    let submitted = trace.len() as u64;
    system.submit_trace(&trace);
    system.run_to_completion();

    let m = system.telemetry().metrics();
    assert_eq!(m.total_requests, submitted);
    assert_eq!(
        m.successes, submitted,
        "a generous SLO and idle GPU must allow every cold request to be served: {:?}",
        m.rejections
    );
    assert!(
        m.cold_starts >= ids.len() as u64,
        "every model's first request is necessarily a cold start"
    );
    assert!(m.goodput_latency.max() <= Nanos::from_millis(800));
}

#[test]
fn impossible_then_feasible_requests_do_not_poison_the_scheduler() {
    // A burst of requests with unmeetable SLOs is rejected; the feasible
    // requests that follow must be completely unaffected (no stale state, no
    // leftover strategies, no blocked executors).
    let zoo = ModelZoo::new();
    let mut system = SystemBuilder::new().workers(1).seed(31).build();
    let id = system.register_model(zoo.resnet50());

    let mut events = Vec::new();
    for i in 0..50u64 {
        events.push(TraceEvent {
            at: Timestamp::from_millis(i),
            model: id,
            slo: Nanos::from_micros(200),
            tier: Tier::Strict,
        });
    }
    for i in 0..50u64 {
        events.push(TraceEvent {
            at: Timestamp::from_millis(500 + 10 * i),
            model: id,
            slo: Nanos::from_millis(100),
            tier: Tier::Strict,
        });
    }
    system.submit_trace(&Trace::new(events));
    system.run_to_completion();

    let responses = system.telemetry().responses();
    assert_eq!(responses.len(), 100);
    let (mut early_rejected, mut late_served) = (0u64, 0u64);
    for r in responses {
        if r.arrival < Timestamp::from_millis(400) {
            if matches!(r.outcome, RequestOutcome::Rejected { .. }) {
                early_rejected += 1;
            }
        } else if let RequestOutcome::Success { completed, .. } = r.outcome {
            assert!(completed <= r.deadline, "post-burst request served late");
            late_served += 1;
        }
    }
    assert_eq!(
        early_rejected, 50,
        "every impossible-SLO request is rejected"
    );
    assert_eq!(
        late_served, 50,
        "every feasible follow-up request is served"
    );
}

#[test]
fn multi_gpu_workers_share_the_load() {
    // The §6.5 scale experiment runs 2 GPUs per worker; both GPUs must
    // actually absorb work (the scheduler balances across GPU executors, not
    // just across workers).
    let zoo = ModelZoo::new();
    let mut single = SystemBuilder::new()
        .workers(1)
        .gpus_per_worker(1)
        .seed(41)
        .build();
    let mut dual = SystemBuilder::new()
        .workers(1)
        .gpus_per_worker(2)
        .seed(41)
        .build();

    let run = |system: &mut ServingSystem| {
        let ids = system.register_copies(zoo.resnet50(), 8);
        let trace = open_loop_trace(&ids, 150.0, Nanos::from_millis(50), Nanos::from_secs(4), 13);
        system.submit_trace(&trace);
        system.run_to_completion();
        system.telemetry().metrics()
    };
    let m1 = run(&mut single);
    let m2 = run(&mut dual);
    // 8 models x 150 r/s = 1200 r/s offered: beyond one GPU even with
    // batching, comfortably within two. The single-GPU worker must shed load
    // while the dual-GPU worker absorbs almost all of it — i.e. the second
    // GPU is genuinely used.
    assert!(
        m1.satisfaction() < 0.92,
        "1200 r/s should overload a single GPU (satisfaction {})",
        m1.satisfaction()
    );
    assert!(
        m2.satisfaction() > m1.satisfaction() + 0.05,
        "second GPU added little: {} vs {}",
        m2.satisfaction(),
        m1.satisfaction()
    );
    assert!(m2.goodput > m1.goodput);
    assert!(m2.goodput_latency.percentile(99.9) <= Nanos::from_millis(50));
}
