//! The tick diet: the change-driven scheduler core must keep early-outs
//! cheap and rare at the facade level.
//!
//! Before this refactor every delivered `SchedulerTick` rebuilt the world:
//! re-scanned every model queue, recomputed every load priority, rebuilt
//! every strategy list. The tick pipeline is now change-driven — `next_tick`
//! prunes grid points that provably cannot act, and a tick that still lands
//! on unchanged state early-outs in O(1). These tests pin that down with the
//! scheduler's own self-profiling counters, the same numbers the bench
//! binaries publish as the `sched` object of `BENCH_*.json`.

use clockwork::prelude::*;

fn run_fleet_smoke(seed: u64) -> ServingSystem {
    let zoo = ModelZoo::new();
    let duration = Nanos::from_secs(10);
    let config = AzureTraceConfig {
        functions: 80,
        models: 20,
        duration,
        target_rate: 400.0,
        slo: Nanos::from_millis(100),
        seed,
    };
    let trace = AzureTraceGenerator::new(config).generate();
    let mut system = SystemBuilder::new()
        .workers(4)
        .gpus_per_worker(2)
        .seed(seed)
        .drop_raw_responses()
        .build();
    let varieties = zoo.all();
    for i in 0..config.models {
        system.register_model(&varieties[i % varieties.len()]);
    }
    system.submit_trace(&trace);
    system.run_to_completion();
    system
}

#[test]
fn early_out_ticks_stay_a_bounded_fraction_of_delivered_events() {
    let system = run_fleet_smoke(7);
    let delivered = system.telemetry().event_mix().delivered();
    assert!(delivered > 10_000, "scenario too small to be meaningful");
    let sched = system.sched_profile();
    assert!(sched.ticks_full > 0, "no full passes ran at all");
    // Skipped ticks exist only because the facade keeps an already-queued
    // earlier tick instead of moving it later; each costs O(1). They must
    // stay a small fraction of the event stream — if they grow, `next_tick`
    // has stopped pruning and the grid is being scheduled blindly.
    let skipped_ratio = sched.ticks_skipped as f64 / delivered as f64;
    assert!(
        skipped_ratio < 0.10,
        "early-out ticks are {:.1}% of {delivered} delivered events (limit 10%)",
        skipped_ratio * 100.0
    );
}

#[test]
fn full_passes_are_far_fewer_than_the_legacy_one_per_grid_point() {
    let system = run_fleet_smoke(7);
    let sched = system.sched_profile();
    // The legacy scheduler ran a full rebuild at every 1 ms grid point while
    // busy — with a 10 s trace and drain tail, >10,000 of them, every one
    // rescanning all 20 models. The change-driven core must do a small
    // multiple of the *productive* tick count, not the grid size.
    let total = sched.ticks();
    assert!(
        total < 10_000,
        "{total} ticks delivered — next_tick is not pruning the grid"
    );
    // Telemetry and scheduler agree on the split (the facade counts
    // outcomes, the scheduler counts its own early-out branch).
    assert_eq!(
        system.telemetry().sched_ticks_full() + system.telemetry().sched_ticks_skipped(),
        total
    );
}

#[test]
fn the_tick_diet_does_not_change_serving_outcomes() {
    // Pruned ticks remove passes, not work: every request still gets exactly
    // one response and the fleet still serves its load.
    let system = run_fleet_smoke(7);
    let m = system.telemetry().metrics();
    let rejected: u64 = m.rejections.values().sum();
    assert_eq!(
        m.successes + rejected,
        m.total_requests,
        "successes + rejected must equal total"
    );
    assert!(m.satisfaction() > 0.5, "the fleet still serves its load");
}
