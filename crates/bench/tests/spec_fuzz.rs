//! Chaos-fuzzed differential testing: random valid scenarios, every
//! discipline, universal invariants.
//!
//! Proptest strategies generate small but fully random [`ScenarioSpec`]s —
//! every workload kind (Azure-like, open-loop, closed-loop, shaped with all
//! rate-profile / popularity / tier-mix variants), hostile execution
//! variance, and randomized fault plans (churn plus mid-run worker joins) —
//! and run each one under **all five** registered disciplines: clockwork,
//! clockwork-nobatch, fifo, and the Clipper- and INFaaS-like baselines.
//!
//! The assertions are exactly the universal invariants every bench harness
//! enforces (`bench::invariants`, reused verbatim): exactly-once accounting
//! when drained, no SLO over-delivery, event-mix conservation, and digest
//! stability across two same-seed runs. No discipline-specific behavior is
//! asserted — the point is that *no* reachable scenario can make any
//! discipline break the rules every discipline must obey.
//!
//! Minimized-repro machinery: every assertion message embeds the failing
//! spec as `ScenarioSpec::to_json()`. Paste that JSON into
//! `ScenarioSpec::from_json` (as `tests/shed_regression.rs` does) to replay
//! a failure deterministically; the vendored proptest stub seeds each case
//! from the property name, so reruns also reproduce in place.

use clockwork::prelude::*;
use clockwork_baselines::register_baselines;
use proptest::prelude::*;

fn rate_profile() -> impl Strategy<Value = RateProfile> {
    prop_oneof![
        Just(RateProfile::Constant),
        (0.1f64..1.0, 0.5f64..4.0)
            .prop_map(|(amplitude, cycles)| RateProfile::Diurnal { amplitude, cycles }),
        (0.1f64..0.7, 0.05f64..0.3, 2.0f64..12.0).prop_map(|(start_frac, len_frac, multiplier)| {
            RateProfile::FlashCrowd {
                start_frac,
                len_frac,
                multiplier,
            }
        }),
    ]
}

fn popularity() -> impl Strategy<Value = PopularityModel> {
    prop_oneof![
        Just(PopularityModel::Uniform),
        (500u32..2000, 0u32..4).prop_map(|(exponent_milli, drift_segments)| {
            PopularityModel::Zipf {
                exponent_milli,
                drift_segments,
            }
        }),
    ]
}

fn tier_mix() -> impl Strategy<Value = TierMix> {
    prop_oneof![
        Just(TierMix::ALL_STRICT),
        (100u32..1000, 150u64..600).prop_map(|(strict_share_milli, best_effort_slo_ms)| {
            TierMix {
                strict_share_milli,
                best_effort_slo_ms,
            }
        }),
    ]
}

fn workload() -> impl Strategy<Value = WorkloadSpec> {
    prop_oneof![
        (4usize..32, 50.0f64..300.0).prop_map(|(functions, target_rate)| WorkloadSpec::Azure {
            functions,
            target_rate,
        }),
        (5.0f64..60.0).prop_map(|rate_per_model| WorkloadSpec::OpenLoop { rate_per_model }),
        (1u32..4).prop_map(|concurrency| WorkloadSpec::ClosedLoop { concurrency }),
        (50.0f64..300.0, rate_profile(), popularity(), tier_mix()).prop_map(
            |(base_rate, profile, popularity, tiers)| WorkloadSpec::Shaped {
                base_rate,
                profile,
                popularity,
                tiers,
            }
        ),
    ]
}

/// A randomized fault plan scaled to the fuzzed fleet: bounded churn drawn
/// from [`FaultPlan::random_churn`] plus up to one mid-run worker join —
/// the same ingredients as the zoo's autoscale scenario, at fuzz size.
fn fault_plan(
    workers: u32,
    gpus_per_worker: u32,
    duration_secs: u64,
) -> impl Strategy<Value = FaultPlan> {
    (
        0u32..2, // worker crash/restart pairs
        0u32..3, // gpu fail/recover pairs
        0u32..2, // link degradations
        0u32..2, // partitions
        any::<bool>(),
        0u64..u64::MAX,
    )
        .prop_map(
            move |(worker_crashes, gpu_failures, link_degradations, partitions, join, seed)| {
                let window = Nanos::from_millis(duration_secs * 1000 / 2);
                let mut plan = FaultPlan::random_churn(&ChurnConfig {
                    workers,
                    gpus_per_worker,
                    start: Timestamp::from_millis(duration_secs * 1000 / 4),
                    duration: window,
                    worker_crashes,
                    gpu_failures,
                    link_degradations,
                    partitions,
                    min_downtime: Nanos::from_millis(100),
                    max_downtime: Nanos::from_millis(500),
                    seed,
                });
                if join {
                    // Joins address workers past the initial fleet.
                    plan =
                        plan.join_worker(Timestamp::from_millis(duration_secs * 1000 / 3), workers);
                }
                plan
            },
        )
}

fn spec() -> impl Strategy<Value = ScenarioSpec> {
    (
        1u32..=3,   // workers
        1u32..=2,   // gpus per worker
        1usize..=4, // models
        1u64..=2,   // duration (virtual seconds)
        30u64..200, // strict SLO ms
        workload(),
        any::<bool>(), // hostile execution variance?
        0u64..u64::MAX,
    )
        .prop_flat_map(
            |(workers, gpus, models, secs, slo_ms, workload, hostile, seed)| {
                (
                    Just((workers, gpus, models, secs, slo_ms, workload, hostile, seed)),
                    fault_plan(workers, gpus, secs),
                )
            },
        )
        .prop_map(
            |(
                (workers, gpus_per_worker, models, duration_secs, slo_ms, workload, hostile, seed),
                faults,
            )| {
                let mut spec = ScenarioSpec::smoke(seed);
                spec.name = "fuzz".to_string();
                spec.workers = workers;
                spec.gpus_per_worker = gpus_per_worker;
                spec.models = models;
                spec.duration_secs = duration_secs;
                spec.slo_ms = slo_ms;
                spec.workload = workload;
                spec.variance = if hostile {
                    VarianceConfig::hostile()
                } else {
                    VarianceConfig::none()
                };
                spec.faults = faults;
                spec
            },
        )
}

proptest! {
    // Each case runs 5 disciplines x 2 same-seed replays of a 1-2 virtual
    // second scenario; 32 cases keeps the suite meaningful and CI-fast.
    #![proptest_config(ProptestConfig::with_cases(32))]

    #[test]
    fn every_discipline_upholds_universal_invariants(spec in spec()) {
        let mut registry = SchedulerRegistry::builtin();
        registry.register(Box::new(ClockworkNoBatchFactory::default()));
        register_baselines(&mut registry);

        let experiment = Experiment::new(spec.clone());
        for factory in registry.iter() {
            let label = format!("fuzz/{}", factory.name());
            let report = experiment.run(factory);
            prop_assert!(
                bench::invariants::check_run(&label, &report, &spec),
                "[{}] invariant violation; minimized repro spec:\n{}",
                label,
                spec.to_json()
            );
            let rerun = experiment.run(factory);
            prop_assert!(
                bench::invariants::check_determinism(&label, &report, &rerun),
                "[{}] nondeterminism; minimized repro spec:\n{}",
                label,
                spec.to_json()
            );
        }
    }

    #[test]
    fn every_generated_spec_round_trips_through_json(spec in spec()) {
        let json = spec.to_json();
        let parsed = ScenarioSpec::from_json(&json).expect("generated spec must parse");
        prop_assert_eq!(
            parsed.to_json(),
            json,
            "JSON round-trip not a fixed point for spec:\n{}",
            spec.to_json()
        );
    }
}
