//! The sharded fleet against its oracles.
//!
//! Three layers of evidence that sharding changes *where* work happens but
//! not *what* happens:
//!
//! 1. **The 1-shard fleet is the monolith.** Same spec through
//!    `ShardedExperiment` with `N = 1` and through `Experiment::run` must
//!    produce byte-identical response digests — not statistically similar,
//!    identical. This pins the whole sharded pipeline (partition, local-id
//!    remap, runner loop) to the unsharded code path.
//! 2. **Parallel fleets conserve.** With `N > 1` the digests legitimately
//!    differ from the monolith (each shard schedules its own slice), but
//!    the global exactly-once identity, per-shard event conservation and
//!    rerun determinism must all hold — including when a whole shard's
//!    rack dies mid-run.
//! 3. **The front door is total.** Property test: for arbitrary model and
//!    shard counts, the hash router assigns every model to exactly one
//!    in-range shard and its trace partition loses nothing.

use clockwork::prelude::*;
use clockwork_shard::{FrontDoorRouter, ShardAssignment, ShardedExperiment, ShardedSpec};
use proptest::prelude::*;

fn smoke_sharded(shards: u32) -> ShardedSpec {
    ShardedSpec::new(ScenarioSpec::smoke(7), shards, ShardAssignment::HashByModel)
}

#[test]
fn one_shard_fleet_is_byte_identical_to_the_unsharded_oracle() {
    let factory = ClockworkFactory::default();
    let fleet = ShardedExperiment::new(smoke_sharded(1)).run(&factory);
    let oracle = Experiment::new(ScenarioSpec::smoke(7)).run(&factory);

    assert_eq!(fleet.shards.len(), 1);
    assert_eq!(
        fleet.shards[0].digest,
        oracle.digest(),
        "1-shard digest must equal the monolithic digest byte for byte"
    );
    assert_eq!(fleet.submitted(), oracle.submitted);
    assert_eq!(fleet.total_requests(), oracle.metrics().total_requests);
    assert_eq!(fleet.successes(), oracle.metrics().successes);
    assert_eq!(fleet.goodput(), oracle.metrics().goodput);
    assert_eq!(fleet.rejected(), oracle.rejected());
    assert_eq!(fleet.events_processed(), oracle.events_processed());
    assert_eq!(fleet.shards[0].sched, oracle.sched_stats());
}

#[test]
fn parallel_fleets_uphold_global_accounting_and_determinism() {
    let factory = ClockworkFactory::default();
    let oracle = Experiment::new(ScenarioSpec::smoke(7)).run(&factory);
    for shards in [2, 4] {
        let experiment = ShardedExperiment::new(smoke_sharded(shards));
        let fleet = experiment.run(&factory);
        let label = format!("{shards} shards");
        assert_eq!(fleet.shards.len(), shards as usize, "{label}");
        assert_eq!(
            fleet.submitted(),
            oracle.submitted,
            "{label}: the front door routes the whole workload"
        );
        assert_eq!(
            fleet.submitted(),
            fleet.total_requests(),
            "{label}: every routed request arrives at its shard"
        );
        assert!(fleet.drained(), "{label}: all shards ran dry");
        assert!(
            fleet.identity_ok(),
            "{label}: successes {} + rejected {} == total {}",
            fleet.successes(),
            fleet.rejected(),
            fleet.total_requests()
        );
        assert!(!fleet.overdelivered(), "{label}");
        assert!(
            fleet.mix_conserved(),
            "{label}: per-shard event conservation"
        );
        for shard in &fleet.shards {
            assert!(
                shard.identity_ok(),
                "{label}: shard {} accounting",
                shard.shard
            );
        }
        let rerun = experiment.run(&factory);
        assert_eq!(
            fleet.fleet_digest(),
            rerun.fleet_digest(),
            "{label}: fleet digest stable across reruns"
        );
    }
}

#[test]
fn losing_a_whole_shards_rack_keeps_the_fleet_accountable() {
    let factory = ClockworkFactory::default();
    let spec = smoke_sharded(2).with_rack_outage(0);
    let plans = spec.shard_plans();
    assert!(
        plans[0].spec.faults.worker_crashes() > 0,
        "the outage lands on shard 0"
    );
    assert!(plans[1].spec.faults.is_empty(), "shard 1 never notices");

    let experiment = ShardedExperiment::new(spec);
    let fleet = experiment.run(&factory);
    assert!(fleet.drained());
    assert!(
        fleet.identity_ok(),
        "rack outage: successes {} + rejected {} == total {}",
        fleet.successes(),
        fleet.rejected(),
        fleet.total_requests()
    );
    assert!(fleet.mix_conserved());
    assert!(
        fleet.shards[0].metrics.goodput <= fleet.shards[1].metrics.goodput
            || fleet.shards[0].submitted < fleet.shards[1].submitted,
        "the dead rack's shard should not outperform the healthy one at similar load"
    );
    let rerun = experiment.run(&factory);
    assert_eq!(fleet.fleet_digest(), rerun.fleet_digest());
}

proptest! {
    #[test]
    fn hash_routing_is_total_for_any_population(models in 1usize..200, shards in 1u32..9) {
        let router = FrontDoorRouter::build(&ShardAssignment::HashByModel, shards, models, None);
        prop_assert!(router.table().iter().all(|&s| s < shards));
        let owned_total: usize = (0..shards).map(|s| router.owned_models(s).len()).sum();
        prop_assert_eq!(owned_total, models, "every model owned exactly once");
        for model in 0..models as u32 {
            let owner = router.shard_of(ModelId(model));
            prop_assert!(router.owned_models(owner).contains(&ModelId(model)));
        }
    }

    #[test]
    fn trace_partition_is_lossless_for_any_shard_count(seed in 0u64..50, shards in 1u32..9) {
        let spec = ScenarioSpec {
            duration_secs: 1,
            ..ScenarioSpec::smoke(seed)
        };
        let trace = spec.generated_trace().unwrap();
        let router = FrontDoorRouter::build(&ShardAssignment::HashByModel, shards, spec.models, None);
        let parts = router.route(&trace);
        prop_assert_eq!(parts.len(), shards as usize);
        let total: usize = parts.iter().map(|p| p.len()).sum();
        prop_assert_eq!(total, trace.len(), "no event dropped or duplicated");
    }
}
