//! Every workload-zoo preset under every registered discipline.
//!
//! The cheap, always-on counterpart of the `scenario_matrix` bench binary:
//! each zoo scenario (shortened to a few virtual seconds, churn rescaled to
//! fit) runs under all five disciplines and must uphold the universal
//! invariants from `bench::invariants` — conservation, no over-delivery,
//! exactly-once accounting when drained — and produce a byte-identical
//! response digest when replayed with the same seed. This pins the presets
//! themselves: a preset whose generator loses determinism or whose fault
//! plan breaks accounting fails here, in `cargo test`, not first in CI's
//! bench smoke.

use clockwork::prelude::*;
use clockwork_baselines::register_baselines;

#[test]
fn every_zoo_preset_runs_clean_under_every_discipline() {
    let mut registry = SchedulerRegistry::builtin();
    registry.register(Box::new(ClockworkNoBatchFactory::default()));
    register_baselines(&mut registry);

    let mut failures: Vec<String> = Vec::new();
    for preset in ScenarioSpec::zoo() {
        // Shorten for test speed; duration-scaled fault plans are
        // regenerated so the churn still lands inside the run, exactly as
        // `scenario_matrix --duration-secs` does.
        let rescale_churn = !preset.faults.is_empty();
        let mut spec = preset.with_duration_secs(4);
        if rescale_churn {
            spec.faults = spec.zoo_faults();
        }

        let experiment = Experiment::new(spec.clone());
        for factory in registry.iter() {
            let label = format!("{}/{}", spec.name, factory.name());
            let report = experiment.run(factory);
            if !bench::invariants::check_run(&label, &report, &spec) {
                failures.push(format!("{label}: invariant violation"));
            }
            let rerun = experiment.run(factory);
            if !bench::invariants::check_determinism(&label, &report, &rerun) {
                failures.push(format!("{label}: digest not stable across replays"));
            }
            if report.metrics().total_requests == 0 {
                failures.push(format!("{label}: preset generated no traffic"));
            }
        }
    }
    assert!(failures.is_empty(), "zoo matrix failures: {failures:#?}");
}

#[test]
fn zoo_presets_are_distinct_and_self_describing() {
    let zoo = ScenarioSpec::zoo();
    assert_eq!(zoo.len(), 6, "the zoo advertises six scenarios");
    let names: Vec<&str> = zoo.iter().map(|s| s.name.as_str()).collect();
    assert_eq!(
        names,
        [
            "diurnal",
            "flash_crowd",
            "zipf_drift",
            "multi_tenant",
            "autoscale_churn",
            "rack_outage"
        ]
    );
    // Every preset must survive the serialize/parse cycle the matrix and
    // fuzz harnesses rely on for repro exchange.
    for spec in &zoo {
        let parsed = ScenarioSpec::from_json(&spec.to_json())
            .unwrap_or_else(|e| panic!("{} does not round-trip: {e}", spec.name));
        assert_eq!(parsed.to_json(), spec.to_json(), "{} drifts", spec.name);
    }
}
