//! Regression test for a scenario-zoo-found admission bug, pinned through
//! the minimized-repro path.
//!
//! **The bug**: Clockwork's batch-amortized admission estimate is computed
//! per model, so it is blind to cross-model GPU contention. Under the
//! flash-crowd zoo scenario (40 models sharing 16 GPUs, a 10x burst on a
//! tiered client population) every model's own queue stays shallow while
//! the fleet drowns in aggregate backlog: every lost request died of
//! `deadline_elapsed` *inside the queue* and not a single best-effort
//! request was shed at admission — tier-aware graceful degradation was
//! inert exactly when it mattered.
//!
//! **The fix** (`clockwork-controller/src/clockwork_scheduler.rs`): the
//! best-effort shed bar folds in a fleet-pressure term — the aggregate
//! queued backlog's fair drain share across alive GPUs — so the discount
//! tier is shed up-front under fleet-wide bursts while strict admission is
//! untouched (all-strict digests stay frozen).
//!
//! The spec below is the minimized repro exactly as the fuzz/matrix
//! harnesses would serialize it (`ScenarioSpec::to_json`), and is loaded
//! through `ScenarioSpec::from_json` so the repro machinery itself stays
//! exercised end to end.

use clockwork::prelude::*;

/// `ScenarioSpec::flash_crowd()` minimized to 10 simulated seconds —
/// the shortest run that still reproduces the inert-degradation failure
/// against the pre-fix scheduler.
const MINIMIZED_REPRO: &str = r#"{"name":"flash_crowd","workers":8,"gpus_per_worker":2,"models":40,"model_set":"zoo_cycle","workload":{"kind":"shaped","base_rate":300,"profile":{"kind":"flash_crowd","start_frac":0.4,"len_frac":0.1,"multiplier":10},"popularity":{"kind":"uniform"},"tiers":{"strict_share_milli":600,"best_effort_slo_ms":250}},"slo_ms":100,"duration_secs":10,"drain_secs":2,"seed":2020,"workload_seed":2020,"variance":{"spike_probability":0,"max_spike_ns":0,"throttle_mean_interval_ns":null,"throttle_duration_ns":0,"throttle_factor":1},"keep_responses":false,"faults":[],"trace":false,"trace_capacity":2097152}"#;

#[test]
fn flash_crowd_sheds_best_effort_before_strict() {
    let spec = ScenarioSpec::from_json(MINIMIZED_REPRO).expect("minimized repro parses");
    // The embedded repro must stay in sync with the preset it minimizes.
    assert_eq!(
        spec.to_json(),
        ScenarioSpec::flash_crowd().with_duration_secs(10).to_json(),
        "minimized repro drifted from ScenarioSpec::flash_crowd()"
    );

    let report = Experiment::new(spec.clone()).run(&ClockworkFactory::default());
    assert!(
        bench::invariants::check_run("shed_regression/clockwork", &report, &spec),
        "universal invariants violated; repro spec:\n{}",
        spec.to_json()
    );

    let tiers = report.metrics().tiers;
    let strict = &tiers[Tier::Strict.index()];
    let best_effort = &tiers[Tier::BestEffort.index()];
    assert!(
        strict.submitted > 0 && best_effort.submitted > 0,
        "tiered population expected; repro spec:\n{}",
        spec.to_json()
    );
    // Pre-fix behavior: shed == 0 (every loss was a queue-deadline miss).
    assert!(
        best_effort.shed > 0,
        "degradation inert again: a 10x flash crowd shed no best-effort \
         traffic; repro spec:\n{}",
        spec.to_json()
    );
    // The point of graceful degradation: the strict tier keeps at least the
    // retention of the tier being sacrificed for it.
    assert!(
        strict.retention() >= best_effort.retention(),
        "tier inversion: strict retention {:.4} < best-effort {:.4}; repro spec:\n{}",
        strict.retention(),
        best_effort.retention(),
        spec.to_json()
    );
    // Strict traffic is never shed — the branch is best-effort-only.
    assert_eq!(strict.shed, 0, "strict requests must never be tier-shed");
}
