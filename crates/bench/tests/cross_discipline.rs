//! Cross-discipline determinism: the same declarative scenario, run through
//! `Experiment::run` for every registered discipline, twice each.
//!
//! Pins down that (a) each discipline is a pure function of the spec — two
//! same-spec runs produce identical completion digests, which requires
//! deterministic iteration everywhere policy touches shared capacity — and
//! (b) the exactly-once accounting identity `successes + rejected == total`
//! holds under every discipline, not just Clockwork.

use std::collections::HashSet;

use clockwork::prelude::*;

#[test]
fn every_discipline_is_deterministic_and_accounts_for_every_request() {
    let mut registry = SchedulerRegistry::builtin();
    clockwork_baselines::register_baselines(&mut registry);
    assert_eq!(registry.len(), 4, "the four-discipline comparison set");

    let experiment = Experiment::new(ScenarioSpec::smoke(7));
    let mut digests = HashSet::new();
    for factory in registry.iter() {
        let label = factory.name();
        let first = experiment.run(factory);
        let second = experiment.run(factory);
        assert_eq!(first.discipline, label, "report is labelled");
        assert_eq!(
            first.digest(),
            second.digest(),
            "{label}: two same-spec runs diverged ({:016x} vs {:016x})",
            first.digest(),
            second.digest()
        );
        assert_eq!(
            first.events_processed(),
            second.events_processed(),
            "{label}: event counts diverged"
        );
        for report in [&first, &second] {
            let m = report.metrics();
            assert!(report.drained(), "{label}: run should drain");
            assert!(m.total_requests > 0, "{label}: scenario submitted load");
            assert!(
                report.identity_ok(),
                "{label}: successes {} + rejected {} != total {}",
                m.successes,
                report.rejected(),
                m.total_requests
            );
            assert!(report.mix_conserved(), "{label}: event accounting broken");
        }
        digests.insert(first.digest());
    }
    assert!(
        digests.len() > 1,
        "different disciplines should produce different executions"
    );
}
