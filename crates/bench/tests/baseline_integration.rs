//! Integration tests comparing serving disciplines on the same substrate.
//!
//! These lived in the facade crate while it still linked the baselines;
//! since the registry inversion the facade only knows the `Scheduler` trait,
//! so the cross-discipline suites live here, where every discipline crate is
//! in scope. The scenario is declarative: one `ScenarioSpec`, every
//! discipline, via `Experiment::run`.

use clockwork::prelude::*;
use clockwork_baselines::{ClipperFactory, InfaasFactory};

fn closed_loop_spec(copies: usize, slo_ms: u64, seconds: u64) -> ScenarioSpec {
    ScenarioSpec {
        name: "baseline_integration".to_string(),
        workers: 1,
        gpus_per_worker: 1,
        models: copies,
        model_set: ModelSet::Resnet50Copies,
        workload: WorkloadSpec::ClosedLoop { concurrency: 16 },
        slo_ms,
        duration_secs: seconds,
        drain_secs: 0,
        keep_responses: false,
        ..ScenarioSpec::smoke(300)
    }
}

fn run_closed_loop(
    factory: &dyn SchedulerFactory,
    copies: usize,
    slo_ms: u64,
    seconds: u64,
) -> ExperimentMetrics {
    Experiment::new(closed_loop_spec(copies, slo_ms, seconds))
        .run(factory)
        .metrics()
}

#[test]
fn all_disciplines_serve_a_light_workload() {
    let mut registry = SchedulerRegistry::builtin();
    clockwork_baselines::register_baselines(&mut registry);
    assert_eq!(
        registry.names(),
        vec!["clockwork", "fifo", "clipper", "infaas"]
    );
    for factory in registry.iter() {
        let label = factory.name();
        let m = run_closed_loop(factory, 2, 500, 3);
        assert!(m.successes > 500, "{label}: successes {}", m.successes);
        assert!(
            m.satisfaction() > 0.5,
            "{label}: satisfaction {}",
            m.satisfaction()
        );
    }
}

#[test]
fn clockwork_beats_baselines_at_tight_slos() {
    // The Fig. 5 headline: below ~100 ms SLO the reactive baselines' goodput
    // collapses while Clockwork keeps serving.
    let clockwork = run_closed_loop(&ClockworkFactory::default(), 15, 50, 8);
    let clipper = run_closed_loop(&ClipperFactory::default(), 15, 50, 8);
    let infaas = run_closed_loop(&InfaasFactory::default(), 15, 50, 8);
    assert!(
        clockwork.goodput_rate() > clipper.goodput_rate(),
        "clockwork {} vs clipper {}",
        clockwork.goodput_rate(),
        clipper.goodput_rate()
    );
    assert!(
        clockwork.goodput_rate() > infaas.goodput_rate(),
        "clockwork {} vs infaas {}",
        clockwork.goodput_rate(),
        infaas.goodput_rate()
    );
    assert!(
        clockwork.satisfaction() > clipper.satisfaction(),
        "clockwork {} vs clipper {}",
        clockwork.satisfaction(),
        clipper.satisfaction()
    );
}

#[test]
fn baselines_tail_latency_exceeds_slo_under_pressure() {
    // Clipper keeps executing late requests, so its p99 blows through the SLO;
    // Clockwork's stays pinned near it.
    let slo_ms = 50u64;
    let clockwork = run_closed_loop(&ClockworkFactory::default(), 15, slo_ms, 6);
    let clipper = run_closed_loop(&ClipperFactory::default(), 15, slo_ms, 6);
    let cw_p99 = clockwork.latency.percentile(99.0).as_millis_f64();
    let cl_p99 = clipper.latency.percentile(99.0).as_millis_f64();
    assert!(
        cw_p99 <= slo_ms as f64 + 5.0,
        "clockwork p99 {cw_p99} should stay near the {slo_ms} ms SLO"
    );
    assert!(
        cl_p99 > cw_p99,
        "clipper p99 {cl_p99} vs clockwork p99 {cw_p99}"
    );
}
