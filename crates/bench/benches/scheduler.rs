//! Criterion bench for the controller hot path: request admission + INFER
//! scheduling + result handling. The paper's controller sustains thousands of
//! requests per second; the scheduler callback cost is what bounds that.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;
use std::sync::Arc;

use clockwork_controller::request::{InferenceRequest, RequestId};
use clockwork_controller::scheduler::{Scheduler, SchedulerCtx};
use clockwork_controller::worker_state::GpuRef;
use clockwork_controller::ClockworkScheduler;
use clockwork_model::zoo::ModelZoo;
use clockwork_model::{ModelId, Tier};
use clockwork_sim::time::{Nanos, Timestamp};
use clockwork_worker::{GpuId, WorkerId};

fn scheduler_hot_path(c: &mut Criterion) {
    let zoo = ModelZoo::new();
    let spec = Arc::new(zoo.resnet50().clone());
    let mut group = c.benchmark_group("scheduler_hot_path");
    group.bench_function("on_request_warm_model", |b| {
        let mut s = ClockworkScheduler::with_defaults();
        for w in 0..6 {
            s.add_gpu(
                GpuRef {
                    worker: WorkerId(w),
                    gpu: GpuId(0),
                },
                1984,
                16 * 1024 * 1024,
            );
        }
        for m in 0..16 {
            s.add_model(ModelId(m), Arc::clone(&spec), Nanos::from_millis_f64(8.33));
        }
        let mut ctx = SchedulerCtx::new();
        let mut i = 0u64;
        b.iter(|| {
            let request = InferenceRequest {
                id: RequestId(i),
                model: ModelId((i % 16) as u32),
                arrival: Timestamp::from_micros_like(i),
                slo: Nanos::from_millis(100),
                tier: Tier::Strict,
            };
            i += 1;
            s.on_request(request.arrival, black_box(request), &mut ctx);
            let _ = ctx.take_actions();
            let _ = ctx.take_responses();
        });
    });
    group.finish();
}

trait FromMicrosLike {
    fn from_micros_like(v: u64) -> Self;
}

impl FromMicrosLike for Timestamp {
    fn from_micros_like(v: u64) -> Self {
        Timestamp::from_nanos(v * 1_000)
    }
}

criterion_group!(benches, scheduler_hot_path);
criterion_main!(benches);
