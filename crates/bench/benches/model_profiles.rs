//! Criterion bench for Appendix A (Table 1) paths: zoo construction, model
//! compilation, and the profiling step.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

use clockwork_model::compiler::Compiler;
use clockwork_model::profiler::{profile_model, ProfilerConfig};
use clockwork_model::source::ModelSource;
use clockwork_model::zoo::ModelZoo;
use clockwork_sim::gpu::{GpuSpec, GpuTimingModel};
use clockwork_sim::rng::SimRng;

fn model_pipeline(c: &mut Criterion) {
    let mut group = c.benchmark_group("table1_model_pipeline");
    group.bench_function("zoo_construction", |b| {
        b.iter(|| black_box(ModelZoo::new().len()));
    });
    group.bench_function("compile_resnet_like", |b| {
        let compiler = Compiler::new();
        let source = ModelSource::resnet_like("bench", 4);
        b.iter(|| black_box(compiler.compile(black_box(&source))));
    });
    group.bench_function("profile_resnet50", |b| {
        let zoo = ModelZoo::new();
        let spec = zoo.resnet50().clone();
        let cfg = ProfilerConfig::default();
        b.iter(|| {
            let mut gpu = GpuTimingModel::new(GpuSpec::tesla_v100(), SimRng::seeded(3));
            black_box(profile_model(&spec, &mut gpu, &cfg))
        });
    });
    group.finish();
}

criterion_group!(benches, model_pipeline);
criterion_main!(benches);
