//! Criterion bench comparing end-to-end serving disciplines on a short
//! closed-loop workload (a miniature of Fig. 5). The measured quantity is the
//! host-time cost of simulating one second of serving, which also serves as a
//! regression guard for the event loop.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

use clockwork::prelude::*;
use clockwork_baselines::register_baselines;

fn run_once(factory: &dyn SchedulerFactory, seed: u64) -> u64 {
    let zoo = ModelZoo::new();
    let mut system = ServingSystem::with_factory(
        SystemConfig {
            seed,
            ..Default::default()
        },
        factory,
    );
    let models = system.register_copies(zoo.resnet50(), 4);
    for (i, &m) in models.iter().enumerate() {
        system.add_closed_loop_client(
            ClosedLoopClient::new(m, 8, Nanos::from_millis(100)),
            Timestamp::from_millis(i as u64),
        );
    }
    system.run_until(Timestamp::from_secs(1));
    system.telemetry().metrics().successes
}

fn serving_systems(c: &mut Criterion) {
    let mut registry = SchedulerRegistry::builtin();
    register_baselines(&mut registry);
    let mut group = c.benchmark_group("serving_one_second");
    group.sample_size(10);
    for factory in registry.iter() {
        group.bench_with_input(
            BenchmarkId::from_parameter(factory.name()),
            &factory,
            |b, factory| {
                b.iter(|| black_box(run_once(*factory, 7)));
            },
        );
    }
    group.finish();
}

criterion_group!(benches, serving_systems);
criterion_main!(benches);
