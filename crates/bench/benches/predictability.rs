//! Criterion bench for the Fig. 2 substrate: isolated vs. concurrent GPU
//! execution sampling, and the worker's INFER fast path.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

use clockwork_model::zoo::ModelZoo;
use clockwork_sim::gpu::{GpuSpec, GpuTimingModel};
use clockwork_sim::rng::SimRng;

fn gpu_sampling(c: &mut Criterion) {
    let zoo = ModelZoo::new();
    let base = zoo.resnet50().exec_latency(1).unwrap();
    let mut group = c.benchmark_group("fig2_gpu_sampling");
    group.bench_function("isolated_exec_duration", |b| {
        let mut gpu = GpuTimingModel::new(GpuSpec::tesla_v100(), SimRng::seeded(1));
        b.iter(|| black_box(gpu.exec_duration(black_box(base))));
    });
    group.bench_function("concurrent16_exec_duration", |b| {
        let mut gpu = GpuTimingModel::new(GpuSpec::tesla_v100(), SimRng::seeded(2));
        b.iter(|| black_box(gpu.exec_duration_concurrent(black_box(base), 16)));
    });
    group.finish();
}

criterion_group!(benches, gpu_sampling);
criterion_main!(benches);
