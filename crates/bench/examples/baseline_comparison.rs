//! Compare Clockwork against the reactive baselines (a miniature Fig. 5).
//!
//! ```bash
//! cargo run --release -p bench --example baseline_comparison
//! ```
//!
//! Runs the same closed-loop workload (6 copies of ResNet50, 16 outstanding
//! requests each, 50 ms SLO) against every discipline in the registry —
//! Clockwork, the FIFO strawman, the Clipper-like baseline and the
//! INFaaS-like baseline — and prints goodput and tail latency for each.
//! This is the registry workflow in miniature: one spec, one loop, every
//! registered discipline.

use clockwork::prelude::*;
use clockwork_baselines::register_baselines;

fn main() {
    let spec = ScenarioSpec {
        name: "baseline_comparison".to_string(),
        workers: 1,
        gpus_per_worker: 1,
        models: 6,
        model_set: ModelSet::Resnet50Copies,
        workload: WorkloadSpec::ClosedLoop { concurrency: 16 },
        slo_ms: 50,
        duration_secs: 10,
        drain_secs: 0,
        keep_responses: false,
        ..ScenarioSpec::smoke(9)
    };
    let mut registry = SchedulerRegistry::builtin();
    register_baselines(&mut registry);

    println!(
        "{:<12} {:>12} {:>14} {:>10}",
        "system", "goodput r/s", "satisfaction", "p99 ms"
    );
    let experiment = Experiment::new(spec);
    let mut clockwork_goodput = 0.0;
    let mut best_baseline = 0.0f64;
    for factory in registry.iter() {
        let report = experiment.run(factory);
        let m = report.metrics();
        println!(
            "{:<12} {:>12.0} {:>13.1}% {:>10.2}",
            report.discipline,
            m.goodput_rate(),
            m.satisfaction() * 100.0,
            m.latency.percentile(99.0).as_millis_f64()
        );
        if report.discipline == "clockwork" {
            clockwork_goodput = m.goodput_rate();
        } else {
            best_baseline = best_baseline.max(m.goodput_rate());
        }
    }
    println!();
    println!(
        "Clockwork goodput vs best baseline: {:.2}x",
        clockwork_goodput / best_baseline.max(1.0)
    );
}
