//! Shared helpers for the experiment binaries and Criterion benches.
//!
//! Each binary in `src/bin/` regenerates one table or figure of the paper
//! (see DESIGN.md for the index and EXPERIMENTS.md for measured results). The
//! helpers here keep the binaries small: building systems for a scenario,
//! running a workload, and printing result rows as CSV.

use clockwork::prelude::*;

/// The result row shared by most experiments.
#[derive(Clone, Debug)]
pub struct RunSummary {
    /// Label of the system / configuration.
    pub label: String,
    /// Total requests submitted.
    pub total: u64,
    /// Requests completed within their SLO.
    pub goodput: u64,
    /// Goodput in requests per second.
    pub goodput_rate: f64,
    /// Fraction of requests that met the SLO.
    pub satisfaction: f64,
    /// Median latency in milliseconds.
    pub p50_ms: f64,
    /// 99th percentile latency in milliseconds.
    pub p99_ms: f64,
    /// 99.99th percentile latency in milliseconds.
    pub p9999_ms: f64,
    /// Maximum latency in milliseconds.
    pub max_ms: f64,
    /// Cold start fraction among successes.
    pub cold_fraction: f64,
    /// Mean batch size.
    pub mean_batch: f64,
}

impl RunSummary {
    /// Builds a summary from a finished system run.
    pub fn from_system(label: impl Into<String>, system: &ServingSystem) -> Self {
        let m = system.telemetry().metrics();
        let t = m.latency.tail_summary();
        RunSummary {
            label: label.into(),
            total: m.total_requests,
            goodput: m.goodput,
            goodput_rate: m.goodput_rate(),
            satisfaction: m.satisfaction(),
            p50_ms: t.p50.as_millis_f64(),
            p99_ms: t.p99.as_millis_f64(),
            p9999_ms: t.p9999.as_millis_f64(),
            max_ms: t.max.as_millis_f64(),
            cold_fraction: m.cold_start_fraction(),
            mean_batch: m.mean_batch,
        }
    }

    /// The CSV header matching [`RunSummary::csv_row`].
    pub fn csv_header() -> &'static str {
        "label,total,goodput,goodput_rps,satisfaction,p50_ms,p99_ms,p9999_ms,max_ms,cold_fraction,mean_batch"
    }

    /// One CSV row.
    pub fn csv_row(&self) -> String {
        format!(
            "{},{},{},{:.1},{:.4},{:.2},{:.2},{:.2},{:.2},{:.4},{:.2}",
            self.label,
            self.total,
            self.goodput,
            self.goodput_rate,
            self.satisfaction,
            self.p50_ms,
            self.p99_ms,
            self.p9999_ms,
            self.max_ms,
            self.cold_fraction,
            self.mean_batch
        )
    }
}

/// Builds a system with `copies` instances of ResNet50 and a given scheduler,
/// the configuration of the Fig. 5 comparison.
pub fn resnet_system(
    kind: SchedulerKind,
    workers: u32,
    copies: usize,
    seed: u64,
) -> (ServingSystem, Vec<ModelId>) {
    let zoo = ModelZoo::new();
    let mut system = SystemBuilder::new()
        .workers(workers)
        .scheduler(kind)
        .seed(seed)
        .build();
    let models = system.register_copies(zoo.resnet50(), copies);
    (system, models)
}

/// Runs a closed-loop workload (the §6.1 setup: `concurrency` requests in
/// flight per model) against a system for a virtual duration.
pub fn run_closed_loop(
    system: &mut ServingSystem,
    models: &[ModelId],
    concurrency: u32,
    slo: Nanos,
    duration: Nanos,
) {
    for (i, &model) in models.iter().enumerate() {
        system.add_closed_loop_client(
            ClosedLoopClient::new(model, concurrency, slo),
            Timestamp::from_nanos(i as u64 * 1_000),
        );
    }
    system.run_until(Timestamp::ZERO + duration);
}

/// Prints a section header so the output of an experiment binary reads like
/// the corresponding figure.
pub fn section(title: &str) {
    println!();
    println!("## {title}");
}

/// The fleet-scale scenario shared by the `fleet_scale` perf harness and the
/// `chaos_fleet` chaos harness: 20 workers × 4 GPUs, 200 model instances
/// cycling through the Appendix A zoo, and an open-loop Azure-derived trace.
/// Both binaries build the same cluster from the same knobs so the chaos run
/// differs from the perf run *only* by its fault plan.
#[derive(Clone, Debug)]
pub struct FleetScenario {
    /// Number of worker machines.
    pub workers: u32,
    /// GPUs per worker.
    pub gpus_per_worker: u32,
    /// Model instances registered (cycling through the zoo).
    pub models: usize,
    /// Azure-like function workloads mapped onto the models.
    pub functions: usize,
    /// Virtual duration of the trace in seconds.
    pub duration_secs: u64,
    /// Aggregate request rate in requests/second.
    pub target_rate: f64,
    /// Per-request latency SLO in milliseconds.
    pub slo_ms: u64,
    /// Workload + system seed.
    pub seed: u64,
}

impl Default for FleetScenario {
    fn default() -> Self {
        FleetScenario {
            workers: 20,
            gpus_per_worker: 4,
            models: 200,
            functions: 800,
            duration_secs: 120,
            target_rate: 1_500.0,
            slo_ms: 100,
            seed: 2020,
        }
    }
}

impl FleetScenario {
    /// The trace duration in virtual time.
    pub fn duration(&self) -> Nanos {
        Nanos::from_secs(self.duration_secs)
    }

    /// The virtual horizon a run should be driven to: the trace duration
    /// plus slack for in-flight tails to resolve.
    pub fn horizon(&self) -> Timestamp {
        Timestamp::ZERO + self.duration() + Nanos::from_secs(2)
    }

    /// Generates the scenario's Azure-derived open-loop trace.
    pub fn trace(&self) -> Trace {
        AzureTraceGenerator::new(AzureTraceConfig {
            functions: self.functions,
            models: self.models,
            duration: self.duration(),
            target_rate: self.target_rate,
            slo: Nanos::from_millis(self.slo_ms),
            seed: self.seed,
        })
        .generate()
    }

    /// Builds the cluster with the scenario's models registered and an
    /// optional fault plan installed. The caller submits the trace.
    pub fn build_system(&self, faults: FaultPlan) -> ServingSystem {
        let zoo = ModelZoo::new();
        let mut system = SystemBuilder::new()
            .workers(self.workers)
            .gpus_per_worker(self.gpus_per_worker)
            .seed(self.seed)
            .drop_raw_responses()
            .faults(faults)
            .build();
        let varieties = zoo.all();
        for i in 0..self.models {
            system.register_model(&varieties[i % varieties.len()]);
        }
        system
    }
}

/// Prints the event-mix summary (pushed/delivered/cancelled per event kind,
/// plus the no-op-wake count) and checks the conservation identity
/// `pushed == delivered + cancelled + live`. Returns `false` — after
/// printing a loud violation — when the identity does not hold; the perf
/// harnesses fold that into their exit status so CI fails on it.
pub fn report_event_mix(mix: &EventMix, live: u64) -> bool {
    section("event mix");
    for e in mix.entries() {
        if e.pushed == 0 && e.delivered == 0 && e.cancelled == 0 {
            continue;
        }
        println!(
            "{:<20} pushed={:<10} delivered={:<10} cancelled={}",
            e.kind, e.pushed, e.delivered, e.cancelled
        );
    }
    println!(
        "total: pushed={} delivered={} cancelled={} live={} noop_wakes={}",
        mix.pushed(),
        mix.delivered(),
        mix.cancelled(),
        live,
        mix.noop_wakes()
    );
    let ok = mix.pushed() == mix.delivered() + mix.cancelled() + live;
    if !ok {
        eprintln!(
            "EVENT ACCOUNTING VIOLATION: pushed {} != delivered {} + cancelled {} + live {live}",
            mix.pushed(),
            mix.delivered(),
            mix.cancelled(),
        );
    }
    ok
}

/// Renders the event mix as the `"events"` object of the `BENCH_*.json`
/// schemas (see `crates/bench/README.md`), indented to sit at the top level
/// of the document.
pub fn event_mix_json(mix: &EventMix, live: u64) -> String {
    let mut by_kind = String::new();
    let mut first = true;
    for e in mix.entries() {
        if e.pushed == 0 && e.delivered == 0 && e.cancelled == 0 {
            continue;
        }
        if !first {
            by_kind.push_str(",\n");
        }
        first = false;
        by_kind.push_str(&format!(
            "      \"{}\": {{ \"pushed\": {}, \"delivered\": {}, \"cancelled\": {} }}",
            e.kind, e.pushed, e.delivered, e.cancelled
        ));
    }
    format!(
        "{{\n    \"pushed\": {},\n    \"delivered\": {},\n    \"cancelled\": {},\n    \"live\": {live},\n    \"noop_wakes\": {},\n    \"by_kind\": {{\n{by_kind}\n    }}\n  }}",
        mix.pushed(),
        mix.delivered(),
        mix.cancelled(),
        mix.noop_wakes(),
    )
}

/// Peak resident-set size in kilobytes, read from `/proc/self/status`
/// (`VmHWM`). Returns 0 where the proc filesystem is unavailable — the field
/// is a proxy for memory footprint, not a portable measurement.
pub fn peak_rss_kb() -> u64 {
    let Ok(status) = std::fs::read_to_string("/proc/self/status") else {
        return 0;
    };
    for line in status.lines() {
        if let Some(rest) = line.strip_prefix("VmHWM:") {
            return rest
                .trim()
                .trim_end_matches("kB")
                .trim()
                .parse()
                .unwrap_or(0);
        }
    }
    0
}

/// Extracts a numeric field from a flat JSON document without a JSON parser
/// (the workspace builds offline; the bench schemas are flat and stable).
pub fn json_number(doc: &str, field: &str) -> Option<f64> {
    let needle = format!("\"{field}\":");
    let at = doc.find(&needle)? + needle.len();
    let rest = doc[at..].trim_start();
    let end = rest
        .find(|c: char| !(c.is_ascii_digit() || c == '.' || c == '-' || c == 'e' || c == '+'))
        .unwrap_or(rest.len());
    rest[..end].parse().ok()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fleet_scenario_builds_and_generates_deterministic_traces() {
        let scenario = FleetScenario {
            workers: 2,
            gpus_per_worker: 1,
            models: 4,
            functions: 8,
            duration_secs: 2,
            target_rate: 50.0,
            ..Default::default()
        };
        let a = scenario.trace();
        let b = scenario.trace();
        assert_eq!(a.len(), b.len(), "trace generation must be deterministic");
        assert!(!a.is_empty());
        let system = scenario.build_system(FaultPlan::new());
        assert_eq!(system.config().workers, 2);
        assert_eq!(system.config().gpus_per_worker, 1);
        assert_eq!(json_number("{\"a\": 42.5, \"b\": 1}", "a"), Some(42.5));
        assert_eq!(json_number("{\"a\": 1}", "missing"), None);
    }

    #[test]
    fn resnet_system_and_summary_round_trip() {
        let (mut system, models) = resnet_system(SchedulerKind::default(), 1, 2, 1);
        run_closed_loop(
            &mut system,
            &models,
            4,
            Nanos::from_millis(100),
            Nanos::from_millis(500),
        );
        let summary = RunSummary::from_system("smoke", &system);
        assert!(summary.total > 0);
        assert!(summary.satisfaction > 0.5);
        assert!(summary.csv_row().starts_with("smoke,"));
        assert!(RunSummary::csv_header().starts_with("label,"));
    }
}
