//! Shared helpers for the experiment binaries and Criterion benches.
//!
//! Each binary in `src/bin/` regenerates one table or figure of the paper
//! (see DESIGN.md for the index and EXPERIMENTS.md for measured results).
//! Since the experiment-API redesign the heavy lifting lives in the facade:
//! a declarative [`ScenarioSpec`] describes the experiment, a
//! [`SchedulerRegistry`] names the disciplines, and [`Experiment::run`] owns
//! the build/submit/run loop. What remains here is reporting: summary rows,
//! chaos-phase analysis shared by `chaos_fleet` and `chaos_compare`, the
//! event-mix printer, and the `BENCH_*.json` plumbing.

use clockwork::prelude::*;

pub mod invariants;

/// The result row shared by most experiments.
#[derive(Clone, Debug)]
pub struct RunSummary {
    /// Label of the system / configuration.
    pub label: String,
    /// Total requests submitted.
    pub total: u64,
    /// Requests completed within their SLO.
    pub goodput: u64,
    /// Goodput in requests per second.
    pub goodput_rate: f64,
    /// Fraction of requests that met the SLO.
    pub satisfaction: f64,
    /// Median latency in milliseconds.
    pub p50_ms: f64,
    /// 99th percentile latency in milliseconds.
    pub p99_ms: f64,
    /// 99.99th percentile latency in milliseconds.
    pub p9999_ms: f64,
    /// Maximum latency in milliseconds.
    pub max_ms: f64,
    /// Cold start fraction among successes.
    pub cold_fraction: f64,
    /// Mean batch size.
    pub mean_batch: f64,
}

impl RunSummary {
    /// Builds a summary from a finished system run.
    pub fn from_system(label: impl Into<String>, system: &ServingSystem) -> Self {
        let m = system.telemetry().metrics();
        let t = m.latency.tail_summary();
        RunSummary {
            label: label.into(),
            total: m.total_requests,
            goodput: m.goodput,
            goodput_rate: m.goodput_rate(),
            satisfaction: m.satisfaction(),
            p50_ms: t.p50.as_millis_f64(),
            p99_ms: t.p99.as_millis_f64(),
            p9999_ms: t.p9999.as_millis_f64(),
            max_ms: t.max.as_millis_f64(),
            cold_fraction: m.cold_start_fraction(),
            mean_batch: m.mean_batch,
        }
    }

    /// Builds a summary from an [`Experiment`] run report.
    pub fn from_report(label: impl Into<String>, report: &RunReport) -> Self {
        RunSummary::from_system(label, &report.system)
    }

    /// The CSV header matching [`RunSummary::csv_row`].
    pub fn csv_header() -> &'static str {
        "label,total,goodput,goodput_rps,satisfaction,p50_ms,p99_ms,p9999_ms,max_ms,cold_fraction,mean_batch"
    }

    /// One CSV row.
    pub fn csv_row(&self) -> String {
        format!(
            "{},{},{},{:.1},{:.4},{:.2},{:.2},{:.2},{:.2},{:.4},{:.2}",
            self.label,
            self.total,
            self.goodput,
            self.goodput_rate,
            self.satisfaction,
            self.p50_ms,
            self.p99_ms,
            self.p9999_ms,
            self.max_ms,
            self.cold_fraction,
            self.mean_batch
        )
    }
}

/// Runs a closed-loop workload (the §6.1 setup: `concurrency` requests in
/// flight per model) against a system for a virtual duration. Used by the
/// binaries whose workload mixes ad-hoc traffic on top of a trace; pure
/// closed-loop scenarios express this as [`WorkloadSpec::ClosedLoop`]
/// instead.
pub fn run_closed_loop(
    system: &mut ServingSystem,
    models: &[ModelId],
    concurrency: u32,
    slo: Nanos,
    duration: Nanos,
) {
    for (i, &model) in models.iter().enumerate() {
        system.add_closed_loop_client(
            ClosedLoopClient::new(model, concurrency, slo),
            Timestamp::from_nanos(i as u64 * 1_000),
        );
    }
    system.run_until(Timestamp::ZERO + duration);
}

/// Prints a section header so the output of an experiment binary reads like
/// the corresponding figure.
pub fn section(title: &str) {
    println!();
    println!("## {title}");
}

/// Per-second goodput/arrivals fraction that counts as "recovered" in the
/// chaos analyses.
pub const STEADY_FRACTION: f64 = 0.9;

/// One phase (pre-churn / churn / post-churn) of a chaos run.
#[derive(Clone, Copy, Debug)]
pub struct PhaseStats {
    /// Phase length in virtual seconds.
    pub secs: f64,
    /// Requests that arrived during the phase.
    pub arrivals: u64,
    /// SLO-met responses during the phase.
    pub goodput: u64,
}

impl PhaseStats {
    /// Goodput rate over the phase, in requests/second.
    pub fn rate(&self) -> f64 {
        self.goodput as f64 / self.secs.max(1e-9)
    }

    /// Goodput over offered load — satisfaction that is meaningful even
    /// though the Azure-like offered rate is non-stationary.
    pub fn satisfaction(&self) -> f64 {
        self.goodput as f64 / (self.arrivals.max(1) as f64)
    }
}

/// The chaos figures shared by `chaos_fleet` and `chaos_compare`: phase
/// breakdown around the fault window, the availability floor, and the
/// recovery time from the last repair until goodput tracks offered load.
#[derive(Clone, Copy, Debug)]
pub struct ChaosAnalysis {
    /// When the first fault fires, in virtual seconds.
    pub first_fault_secs: f64,
    /// When the last recovery lands, in virtual seconds.
    pub last_recovery_secs: f64,
    /// Before the first fault.
    pub pre: PhaseStats,
    /// Between first fault and last recovery.
    pub churn: PhaseStats,
    /// After the last recovery.
    pub post: PhaseStats,
    /// Minimum fleet availability observed across the run.
    pub min_availability: f64,
    /// Fleet availability after the last fault event.
    pub final_availability: f64,
    /// Seconds from the last repair until a per-second bucket's goodput is
    /// back to ≥ [`STEADY_FRACTION`] of that bucket's arrivals (−1.0 when
    /// steady goodput is never reached within the run).
    pub recovery_secs: f64,
}

impl ChaosAnalysis {
    /// Churn-phase satisfaction retained relative to the pre-churn phase.
    pub fn retention(&self) -> f64 {
        let pre = self.pre.satisfaction();
        if pre > 0.0 {
            self.churn.satisfaction() / pre
        } else {
            0.0
        }
    }
}

/// Computes the chaos phase/availability/recovery analysis of a finished
/// run against the scenario's fault plan.
pub fn analyze_chaos(report: &RunReport, spec: &ScenarioSpec) -> ChaosAnalysis {
    let telemetry = report.telemetry();
    let plan = &spec.faults;
    let first_fault = plan.first_at().unwrap_or(Timestamp::ZERO);
    let last_recovery = plan.last_recovery_at().unwrap_or(first_fault);
    let end = Timestamp::ZERO + spec.duration();
    let tick = Nanos::from_secs(1);

    let phase = |from: Timestamp, to: Timestamp, secs: f64| PhaseStats {
        secs: secs.max(1e-9),
        arrivals: telemetry.arrivals_between(from, to),
        goodput: telemetry.goodput_between(from, to),
    };
    let first_fault_secs = first_fault.as_nanos() as f64 / 1e9;
    let last_recovery_secs = last_recovery.as_nanos() as f64 / 1e9;
    let pre = phase(Timestamp::ZERO, first_fault - tick, first_fault_secs);
    let churn = phase(
        first_fault,
        last_recovery - tick,
        last_recovery_secs - first_fault_secs,
    );
    let post = phase(
        last_recovery,
        end,
        spec.duration_secs as f64 - last_recovery_secs,
    );

    // Recovery time: from the last repair until a per-second bucket's
    // goodput is back to >= STEADY_FRACTION of the requests that arrived in
    // that bucket. The offered load is non-stationary, so steadiness is
    // relative to arrivals rather than to an absolute pre-churn rate.
    let goodput = &telemetry.goodput_series;
    let arrivals = &telemetry.request_series;
    let from_bucket = (last_recovery.as_nanos() / tick.as_nanos()) as usize;
    let to_bucket = (end.as_nanos() / tick.as_nanos()) as usize;
    let mut recovery_secs = -1.0;
    for bucket in from_bucket..=to_bucket {
        let offered = arrivals.count_at(bucket);
        if offered == 0 {
            continue;
        }
        if goodput.count_at(bucket) as f64 >= STEADY_FRACTION * offered as f64 {
            let bucket_start = bucket as f64; // 1 s buckets
            recovery_secs = (bucket_start - last_recovery.as_nanos() as f64 / 1e9).max(0.0);
            break;
        }
    }

    ChaosAnalysis {
        first_fault_secs,
        last_recovery_secs,
        pre,
        churn,
        post,
        min_availability: telemetry.min_availability(),
        final_availability: telemetry.final_availability(),
        recovery_secs,
    }
}

/// The invariants every chaos run must keep, discipline-independent.
/// Delegates to [`invariants::check_accounting`] — kept as a named entry
/// point because "the chaos invariants" is how the chaos binaries and their
/// docs refer to it.
pub fn check_chaos_invariants(label: &str, report: &RunReport, spec: &ScenarioSpec) -> bool {
    invariants::check_accounting(label, report, spec)
}

/// Prints the event-mix summary (pushed/delivered/cancelled per event kind,
/// plus the no-op-wake count) and checks the conservation identity
/// `pushed == delivered + cancelled + live`. Returns `false` — after
/// printing a loud violation — when the identity does not hold; the perf
/// harnesses fold that into their exit status so CI fails on it.
pub fn report_event_mix(mix: &EventMix, live: u64) -> bool {
    section("event mix");
    for e in mix.entries() {
        if e.pushed == 0 && e.delivered == 0 && e.cancelled == 0 {
            continue;
        }
        println!(
            "{:<20} pushed={:<10} delivered={:<10} cancelled={}",
            e.kind, e.pushed, e.delivered, e.cancelled
        );
    }
    println!(
        "total: pushed={} delivered={} cancelled={} live={} noop_wakes={}",
        mix.pushed(),
        mix.delivered(),
        mix.cancelled(),
        live,
        mix.noop_wakes()
    );
    let ok = mix.pushed() == mix.delivered() + mix.cancelled() + live;
    if !ok {
        eprintln!(
            "EVENT ACCOUNTING VIOLATION: pushed {} != delivered {} + cancelled {} + live {live}",
            mix.pushed(),
            mix.delivered(),
            mix.cancelled(),
        );
    }
    ok
}

/// Renders the event mix as the `"events"` object of the `BENCH_*.json`
/// schemas (see `crates/bench/README.md`), indented to sit at the top level
/// of the document.
pub fn event_mix_json(mix: &EventMix, live: u64) -> String {
    let mut by_kind = String::new();
    let mut first = true;
    for e in mix.entries() {
        if e.pushed == 0 && e.delivered == 0 && e.cancelled == 0 {
            continue;
        }
        if !first {
            by_kind.push_str(",\n");
        }
        first = false;
        by_kind.push_str(&format!(
            "      \"{}\": {{ \"pushed\": {}, \"delivered\": {}, \"cancelled\": {} }}",
            e.kind, e.pushed, e.delivered, e.cancelled
        ));
    }
    format!(
        "{{\n    \"pushed\": {},\n    \"delivered\": {},\n    \"cancelled\": {},\n    \"live\": {live},\n    \"noop_wakes\": {},\n    \"by_kind\": {{\n{by_kind}\n    }}\n  }}",
        mix.pushed(),
        mix.delivered(),
        mix.cancelled(),
        mix.noop_wakes(),
    )
}

/// Renders the scheduler self-profiling counters as the `"sched"` object of
/// the `BENCH_*.json` schemas (see `crates/bench/README.md`), indented to
/// nest one level deep (per-discipline rows) or at the top level.
pub fn sched_json(sched: &SchedProfile) -> String {
    format!(
        "{{ \"ticks_full\": {}, \"ticks_skipped\": {}, \"candidates_scanned\": {}, \"strategies_recomputed\": {}, \"load_prio_recomputes\": {} }}",
        sched.ticks_full,
        sched.ticks_skipped,
        sched.candidates_scanned,
        sched.strategies_recomputed,
        sched.load_prio_recomputes,
    )
}

/// Prints one scheduler self-profiling row: how many ticks did real work vs
/// early-outed, and how much the work-proportional stages actually scanned.
/// The early-out fraction is the direct measure of the change-driven core —
/// a rebuild-the-world scheduler would show `skipped=0`.
pub fn report_sched_profile(label: &str, sched: &SchedProfile) {
    let ticks = sched.ticks();
    let skipped_frac = if ticks > 0 {
        sched.ticks_skipped as f64 / ticks as f64
    } else {
        0.0
    };
    println!(
        "{:<12} ticks={:<9} full={:<9} skipped={:<9} ({:>5.1}% early-out) candidates={:<11} strat_rebuilds={:<9} load_prio={}",
        label,
        ticks,
        sched.ticks_full,
        sched.ticks_skipped,
        100.0 * skipped_frac,
        sched.candidates_scanned,
        sched.strategies_recomputed,
        sched.load_prio_recomputes,
    );
}

/// Renders a [`ScenarioSpec`] as the `"scenario"` object shared by the
/// `BENCH_*.json` schemas. `max_events` is 0 for uncapped (full) runs.
pub fn scenario_json(spec: &ScenarioSpec, max_events: u64) -> String {
    let (functions, target_rate) = match spec.workload {
        WorkloadSpec::Azure {
            functions,
            target_rate,
        } => (functions, target_rate),
        WorkloadSpec::OpenLoop { rate_per_model } => (0, rate_per_model * spec.models as f64),
        WorkloadSpec::ClosedLoop { .. } => (0, 0.0),
        WorkloadSpec::Shaped { base_rate, .. } => (0, base_rate),
    };
    format!(
        "{{\n    \"name\": \"{name}\",\n    \"workers\": {workers},\n    \"gpus_per_worker\": {gpus},\n    \"models\": {models},\n    \"functions\": {functions},\n    \"duration_secs\": {duration},\n    \"target_rate\": {rate},\n    \"slo_ms\": {slo},\n    \"seed\": {seed},\n    \"max_events\": {max_events}\n  }}",
        name = spec.name,
        workers = spec.workers,
        gpus = spec.gpus_per_worker,
        models = spec.models,
        duration = spec.duration_secs,
        rate = target_rate,
        slo = spec.slo_ms,
        seed = spec.seed,
        max_events = if max_events == u64::MAX { 0 } else { max_events },
    )
}

/// Peak resident-set size in kilobytes, read from `/proc/self/status`
/// (`VmHWM`). Returns 0 where the proc filesystem is unavailable — the field
/// is a proxy for memory footprint, not a portable measurement.
pub fn peak_rss_kb() -> u64 {
    let Ok(status) = std::fs::read_to_string("/proc/self/status") else {
        return 0;
    };
    for line in status.lines() {
        if let Some(rest) = line.strip_prefix("VmHWM:") {
            return rest
                .trim()
                .trim_end_matches("kB")
                .trim()
                .parse()
                .unwrap_or(0);
        }
    }
    0
}

/// Extracts a numeric field from a flat JSON document without a JSON parser
/// (the workspace builds offline; the bench schemas are flat and stable).
pub fn json_number(doc: &str, field: &str) -> Option<f64> {
    let needle = format!("\"{field}\":");
    let at = doc.find(&needle)? + needle.len();
    let rest = doc[at..].trim_start();
    let end = rest
        .find(|c: char| !(c.is_ascii_digit() || c == '.' || c == '-' || c == 'e' || c == '+'))
        .unwrap_or(rest.len());
    rest[..end].parse().ok()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn chaos_analysis_and_invariants_on_a_tiny_chaos_run() {
        let mut spec = ScenarioSpec {
            workers: 2,
            gpus_per_worker: 1,
            models: 4,
            duration_secs: 5,
            ..ScenarioSpec::smoke(5)
        }
        .named("tiny_chaos");
        spec.faults =
            FaultPlan::new().crash_worker_for(Timestamp::from_secs(1), 1, Nanos::from_secs(1));
        let report = Experiment::new(spec.clone()).run(&ClockworkFactory::default());
        assert!(check_chaos_invariants("tiny", &report, &spec));
        let analysis = analyze_chaos(&report, &spec);
        assert!((analysis.first_fault_secs - 1.0).abs() < 1e-9);
        assert!((analysis.last_recovery_secs - 2.0).abs() < 1e-9);
        assert!(analysis.min_availability <= 0.5 + 1e-9);
        assert!(analysis.final_availability > 0.99);
        assert!(analysis.pre.arrivals > 0);
        assert!(analysis.retention() > 0.0);
        assert_eq!(json_number("{\"a\": 42.5, \"b\": 1}", "a"), Some(42.5));
        assert_eq!(json_number("{\"a\": 1}", "missing"), None);
    }

    #[test]
    fn summary_round_trips_from_a_report() {
        let spec = ScenarioSpec {
            workers: 1,
            gpus_per_worker: 1,
            models: 2,
            model_set: ModelSet::Resnet50Copies,
            workload: WorkloadSpec::ClosedLoop { concurrency: 4 },
            duration_secs: 1,
            drain_secs: 0,
            ..ScenarioSpec::smoke(1)
        };
        let report = Experiment::new(spec).run(&ClockworkFactory::default());
        let summary = RunSummary::from_report("smoke", &report);
        assert!(summary.total > 0);
        assert!(summary.satisfaction > 0.5);
        assert!(summary.csv_row().starts_with("smoke,"));
        assert!(RunSummary::csv_header().starts_with("label,"));
    }
}
