//! Shared helpers for the experiment binaries and Criterion benches.
//!
//! Each binary in `src/bin/` regenerates one table or figure of the paper
//! (see DESIGN.md for the index and EXPERIMENTS.md for measured results). The
//! helpers here keep the binaries small: building systems for a scenario,
//! running a workload, and printing result rows as CSV.

use clockwork::prelude::*;

/// The result row shared by most experiments.
#[derive(Clone, Debug)]
pub struct RunSummary {
    /// Label of the system / configuration.
    pub label: String,
    /// Total requests submitted.
    pub total: u64,
    /// Requests completed within their SLO.
    pub goodput: u64,
    /// Goodput in requests per second.
    pub goodput_rate: f64,
    /// Fraction of requests that met the SLO.
    pub satisfaction: f64,
    /// Median latency in milliseconds.
    pub p50_ms: f64,
    /// 99th percentile latency in milliseconds.
    pub p99_ms: f64,
    /// 99.99th percentile latency in milliseconds.
    pub p9999_ms: f64,
    /// Maximum latency in milliseconds.
    pub max_ms: f64,
    /// Cold start fraction among successes.
    pub cold_fraction: f64,
    /// Mean batch size.
    pub mean_batch: f64,
}

impl RunSummary {
    /// Builds a summary from a finished system run.
    pub fn from_system(label: impl Into<String>, system: &ServingSystem) -> Self {
        let m = system.telemetry().metrics();
        let t = m.latency.tail_summary();
        RunSummary {
            label: label.into(),
            total: m.total_requests,
            goodput: m.goodput,
            goodput_rate: m.goodput_rate(),
            satisfaction: m.satisfaction(),
            p50_ms: t.p50.as_millis_f64(),
            p99_ms: t.p99.as_millis_f64(),
            p9999_ms: t.p9999.as_millis_f64(),
            max_ms: t.max.as_millis_f64(),
            cold_fraction: m.cold_start_fraction(),
            mean_batch: m.mean_batch,
        }
    }

    /// The CSV header matching [`RunSummary::csv_row`].
    pub fn csv_header() -> &'static str {
        "label,total,goodput,goodput_rps,satisfaction,p50_ms,p99_ms,p9999_ms,max_ms,cold_fraction,mean_batch"
    }

    /// One CSV row.
    pub fn csv_row(&self) -> String {
        format!(
            "{},{},{},{:.1},{:.4},{:.2},{:.2},{:.2},{:.2},{:.4},{:.2}",
            self.label,
            self.total,
            self.goodput,
            self.goodput_rate,
            self.satisfaction,
            self.p50_ms,
            self.p99_ms,
            self.p9999_ms,
            self.max_ms,
            self.cold_fraction,
            self.mean_batch
        )
    }
}

/// Builds a system with `copies` instances of ResNet50 and a given scheduler,
/// the configuration of the Fig. 5 comparison.
pub fn resnet_system(
    kind: SchedulerKind,
    workers: u32,
    copies: usize,
    seed: u64,
) -> (ServingSystem, Vec<ModelId>) {
    let zoo = ModelZoo::new();
    let mut system = SystemBuilder::new()
        .workers(workers)
        .scheduler(kind)
        .seed(seed)
        .build();
    let models = system.register_copies(zoo.resnet50(), copies);
    (system, models)
}

/// Runs a closed-loop workload (the §6.1 setup: `concurrency` requests in
/// flight per model) against a system for a virtual duration.
pub fn run_closed_loop(
    system: &mut ServingSystem,
    models: &[ModelId],
    concurrency: u32,
    slo: Nanos,
    duration: Nanos,
) {
    for (i, &model) in models.iter().enumerate() {
        system.add_closed_loop_client(
            ClosedLoopClient::new(model, concurrency, slo),
            Timestamp::from_nanos(i as u64 * 1_000),
        );
    }
    system.run_until(Timestamp::ZERO + duration);
}

/// Prints a section header so the output of an experiment binary reads like
/// the corresponding figure.
pub fn section(title: &str) {
    println!();
    println!("## {title}");
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn resnet_system_and_summary_round_trip() {
        let (mut system, models) = resnet_system(SchedulerKind::default(), 1, 2, 1);
        run_closed_loop(
            &mut system,
            &models,
            4,
            Nanos::from_millis(100),
            Nanos::from_millis(500),
        );
        let summary = RunSummary::from_system("smoke", &system);
        assert!(summary.total > 0);
        assert!(summary.satisfaction > 0.5);
        assert!(summary.csv_row().starts_with("smoke,"));
        assert!(RunSummary::csv_header().starts_with("label,"));
    }
}
