//! Fig. 2 — DNN inference is predictable in isolation, unpredictable when the
//! GPU is given choices.
//!
//! (a) CDF of single-threaded ResNet50 inference latency (11 M inferences in
//!     the paper; 1 M here).
//! (b) Throughput and latency as the number of concurrently executing
//!     inferences grows from 1 to 16.

use clockwork_metrics::LatencyHistogram;
use clockwork_model::zoo::ModelZoo;
use clockwork_sim::gpu::{GpuSpec, GpuTimingModel};
use clockwork_sim::rng::SimRng;
use clockwork_sim::time::Nanos;

fn main() {
    let zoo = ModelZoo::new();
    let resnet = zoo.resnet50();
    let base = resnet.exec_latency(1).expect("batch-1 kernel");

    bench::section("Fig 2a: CDF of 1-thread ResNet50 inference latency");
    let mut gpu = GpuTimingModel::new(GpuSpec::tesla_v100(), SimRng::seeded(2));
    let mut hist = LatencyHistogram::new();
    let samples = 1_000_000;
    for _ in 0..samples {
        hist.record(gpu.exec_duration(base));
    }
    println!("percentile,latency_ms");
    for p in [50.0, 90.0, 99.0, 99.9, 99.99, 99.999] {
        println!("{p},{:.4}", hist.percentile(p).as_millis_f64());
    }
    let median = hist.percentile(50.0).as_millis_f64();
    let p9999 = hist.percentile(99.99).as_millis_f64();
    println!(
        "# p99.99 is within {:.3}% of the median (paper: 0.03%)",
        (p9999 - median) / median * 100.0
    );

    bench::section("Fig 2b: throughput and latency vs. GPU concurrency");
    println!("concurrency,throughput_rps,median_ms,p99_ms");
    for concurrency in [1u32, 2, 4, 8, 16] {
        let mut gpu = GpuTimingModel::new(GpuSpec::tesla_v100(), SimRng::seeded(3));
        let mut hist = LatencyHistogram::new();
        let mut busy = Nanos::ZERO;
        let rounds = 20_000;
        for _ in 0..rounds {
            // `concurrency` kernels share the GPU; the round finishes when the
            // slowest finishes.
            let mut slowest = Nanos::ZERO;
            for _ in 0..concurrency {
                let d = gpu.exec_duration_concurrent(base, concurrency);
                hist.record(d);
                slowest = slowest.max(d);
            }
            busy += slowest;
        }
        let served = rounds * u64::from(concurrency);
        let throughput = served as f64 / busy.as_secs_f64();
        println!(
            "{concurrency},{:.0},{:.2},{:.2}",
            throughput,
            hist.percentile(50.0).as_millis_f64(),
            hist.percentile(99.0).as_millis_f64()
        );
    }
    println!("# concurrency buys ~25% throughput but orders of magnitude more latency variance");
}
