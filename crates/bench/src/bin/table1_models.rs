//! Appendix A, Table 1 — the model catalogue.
//!
//! Reproduces the per-model table: IO sizes, weight sizes, PCIe transfer time
//! and GPU execution latency at batch sizes 1–16. The execution latencies are
//! the zoo's ground truth passed through the profiling step (so they include
//! the simulator's measurement path), and the transfer column is produced by
//! the PCIe model — the rightmost column reports its deviation from the
//! paper's measured value.

use clockwork_model::profiler::{profile_model, ProfilerConfig};
use clockwork_model::zoo::ModelZoo;
use clockwork_sim::gpu::{GpuSpec, GpuTimingModel};
use clockwork_sim::pcie::PcieLink;
use clockwork_sim::rng::SimRng;

fn main() {
    let zoo = ModelZoo::new();
    let link = PcieLink::v100_pcie3();
    let mut gpu = GpuTimingModel::new(GpuSpec::tesla_v100(), SimRng::seeded(1));
    let profiler_config = ProfilerConfig::default();

    println!("family,model,input_kb,output_kb,weights_mb,transfer_ms,transfer_err_pct,b1_ms,b2_ms,b4_ms,b8_ms,b16_ms");
    for spec in zoo.all() {
        let profile = profile_model(spec, &mut gpu, &profiler_config);
        let transfer = spec.weights_transfer_duration(&link).as_millis_f64();
        let reported = zoo.reported_transfer_ms(&spec.name).unwrap_or(transfer);
        let err_pct = (transfer - reported) / reported * 100.0;
        let lat = |batch: u32| {
            profile
                .estimate(batch)
                .map(|l| l.as_millis_f64())
                .unwrap_or(f64::NAN)
        };
        println!(
            "{},{},{:.0},{:.2},{:.1},{:.2},{:+.1},{:.2},{:.2},{:.2},{:.2},{:.2}",
            spec.family,
            spec.name,
            spec.input_kb,
            spec.output_kb,
            spec.weights_mb,
            transfer,
            err_pct,
            lat(1),
            lat(2),
            lat(4),
            lat(8),
            lat(16)
        );
    }
    println!("# {} model varieties (paper: 61)", zoo.len());
}
