//! §6.5 scale table — tighter SLOs at larger scale.
//!
//! The paper's final experiment: 10 workers × 2 GPUs, the MAF trace scaled up
//! 1.5×, run once with a 100 ms SLO and once with a 25 ms SLO, reporting
//! goodput, missed-SLO count, P50 and P99.99 latency. We scale the trace to
//! ~1 500 r/s over 4 minutes of virtual time (single-core host budget); the
//! shape to reproduce is that the 100 ms run misses essentially nothing and
//! the 25 ms run rejects a small percentage up-front while keeping the served
//! tail under the SLO.

use clockwork::prelude::*;

fn run(slo_ms: u64) -> (f64, u64, u64, f64, f64, f64) {
    let spec = ScenarioSpec {
        name: "table_scale".to_string(),
        workers: 10,
        gpus_per_worker: 2,
        models: 150,
        model_set: ModelSet::ZooCycle,
        workload: WorkloadSpec::Azure {
            functions: 600,
            target_rate: 1_500.0,
        },
        slo_ms,
        duration_secs: 4 * 60,
        drain_secs: 2,
        seed: 650,
        workload_seed: 65,
        variance: VarianceConfig::none(),
        keep_responses: false,
        faults: FaultPlan::new(),
        ..ScenarioSpec::smoke(650)
    };
    let report = Experiment::new(spec).run(&ClockworkFactory::default());
    let m = report.metrics();
    let missed_after_admission = m.successes - m.goodput;
    let rejected: u64 = m.rejections.values().sum();
    (
        m.goodput_rate(),
        missed_after_admission,
        rejected,
        m.latency.percentile(50.0).as_millis_f64(),
        m.latency.percentile(99.99).as_millis_f64(),
        m.latency.max().as_millis_f64(),
    )
}

fn main() {
    bench::section("Section 6.5 table: 10 workers x 2 GPUs, scaled Azure-like trace");
    println!(
        "slo_ms,goodput_rps,missed_slo_after_admission,rejected_upfront,p50_ms,p9999_ms,max_ms"
    );
    for slo_ms in [100u64, 25] {
        let (goodput, missed, rejected, p50, p9999, max) = run(slo_ms);
        println!("{slo_ms},{goodput:.0},{missed},{rejected},{p50:.2},{p9999:.2},{max:.2}");
    }
    println!("# paper: 100 ms -> 6174 r/s, 0 missed, P50 6.28 ms, P99.99 49.92 ms");
    println!("#        25 ms -> 6060 r/s, 361 missed (0.00002%), P50 5.77 ms, P99.99 21.60 ms");
}
