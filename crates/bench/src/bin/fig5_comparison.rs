//! Fig. 5 — Clipper / INFaaS / Clockwork goodput and latency vs. SLO.
//!
//! 15 copies of ResNet50 on one worker, 16 closed-loop clients per model,
//! target SLO swept from 10 ms to 500 ms. Goodput counts only requests that
//! complete within the SLO. The absolute rates differ from the paper (the
//! substrate is simulated), but the shape should hold: the reactive baselines
//! collapse below a ~100 ms SLO while Clockwork keeps serving, and
//! Clockwork's tail latency stays pinned near the SLO.
//!
//! Each cell is one declarative `ScenarioSpec` (the closed-loop §6.1 setup)
//! run through `Experiment::run` under one registered discipline; the sweep
//! is two loops over SLOs and the registry.

use bench::RunSummary;
use clockwork::prelude::*;
use clockwork_baselines::register_baselines;

/// The Fig. 5 cell: `copies` ResNet50 instances on one worker, closed-loop
/// clients keeping 16 requests in flight per model.
fn cell_spec(copies: usize, slo_ms: u64, duration_secs: u64, seed: u64) -> ScenarioSpec {
    ScenarioSpec {
        name: "fig5".to_string(),
        workers: 1,
        gpus_per_worker: 1,
        models: copies,
        model_set: ModelSet::Resnet50Copies,
        workload: WorkloadSpec::ClosedLoop { concurrency: 16 },
        slo_ms,
        duration_secs,
        drain_secs: 0,
        seed,
        workload_seed: seed,
        variance: VarianceConfig::none(),
        keep_responses: true,
        faults: FaultPlan::new(),
        ..ScenarioSpec::smoke(seed)
    }
}

fn main() {
    let slos_ms = [10u64, 25, 50, 100, 250, 500];
    let copies = 15;
    let duration_secs = 20;

    // Clockwork vs the reactive baselines (the FIFO strawman is the
    // ablation binary's business).
    let mut registry = SchedulerRegistry::new();
    registry.register(Box::new(ClockworkFactory::default()));
    register_baselines(&mut registry);

    bench::section("Fig 5: goodput vs SLO (15x ResNet50, 1 worker, 16 closed-loop clients/model)");
    println!("{}", RunSummary::csv_header());
    for &slo_ms in &slos_ms {
        for factory in registry.iter() {
            let spec = cell_spec(copies, slo_ms, duration_secs, 50 + slo_ms);
            let report = Experiment::new(spec).run(factory);
            let summary =
                RunSummary::from_report(format!("{}_slo{slo_ms}ms", report.discipline), &report);
            println!("{}", summary.csv_row());
        }
    }

    bench::section("Fig 5 (right): latency CDF tails at a 100 ms SLO");
    println!("system,p50_ms,p99_ms,p999_ms,p9999_ms,max_ms");
    for factory in registry.iter() {
        let spec = cell_spec(copies, 100, duration_secs, 99);
        let report = Experiment::new(spec).run(factory);
        let hist = report.telemetry().latency_histogram();
        println!(
            "{},{:.2},{:.2},{:.2},{:.2},{:.2}",
            report.discipline,
            hist.percentile(50.0).as_millis_f64(),
            hist.percentile(99.0).as_millis_f64(),
            hist.percentile(99.9).as_millis_f64(),
            hist.percentile(99.99).as_millis_f64(),
            hist.max().as_millis_f64()
        );
    }
}
