//! Fig. 5 — Clipper / INFaaS / Clockwork goodput and latency vs. SLO.
//!
//! 15 copies of ResNet50 on one worker, 16 closed-loop clients per model,
//! target SLO swept from 10 ms to 500 ms. Goodput counts only requests that
//! complete within the SLO. The absolute rates differ from the paper (the
//! substrate is simulated), but the shape should hold: the reactive baselines
//! collapse below a ~100 ms SLO while Clockwork keeps serving, and
//! Clockwork's tail latency stays pinned near the SLO.

use bench::{resnet_system, run_closed_loop, RunSummary};
use clockwork::prelude::*;
use clockwork_baselines::{ClipperConfig, InfaasConfig};

fn main() {
    let slos_ms = [10u64, 25, 50, 100, 250, 500];
    let duration = Nanos::from_secs(20);
    let copies = 15;
    let concurrency = 16;

    bench::section("Fig 5: goodput vs SLO (15x ResNet50, 1 worker, 16 closed-loop clients/model)");
    println!("{}", RunSummary::csv_header());
    for &slo_ms in &slos_ms {
        let slo = Nanos::from_millis(slo_ms);
        for (label, kind) in [
            ("clockwork", SchedulerKind::default()),
            ("clipper", SchedulerKind::Clipper(ClipperConfig::default())),
            ("infaas", SchedulerKind::Infaas(InfaasConfig::default())),
        ] {
            let (mut system, models) = resnet_system(kind, 1, copies, 50 + slo_ms);
            run_closed_loop(&mut system, &models, concurrency, slo, duration);
            let summary = RunSummary::from_system(format!("{label}_slo{slo_ms}ms"), &system);
            println!("{}", summary.csv_row());
        }
    }

    bench::section("Fig 5 (right): latency CDF tails at a 100 ms SLO");
    println!("system,p50_ms,p99_ms,p999_ms,p9999_ms,max_ms");
    for (label, kind) in [
        ("clockwork", SchedulerKind::default()),
        ("clipper", SchedulerKind::Clipper(ClipperConfig::default())),
        ("infaas", SchedulerKind::Infaas(InfaasConfig::default())),
    ] {
        let (mut system, models) = resnet_system(kind, 1, copies, 99);
        run_closed_loop(
            &mut system,
            &models,
            concurrency,
            Nanos::from_millis(100),
            duration,
        );
        let hist = system.telemetry().latency_histogram();
        println!(
            "{label},{:.2},{:.2},{:.2},{:.2},{:.2}",
            hist.percentile(50.0).as_millis_f64(),
            hist.percentile(99.0).as_millis_f64(),
            hist.percentile(99.9).as_millis_f64(),
            hist.percentile(99.99).as_millis_f64(),
            hist.max().as_millis_f64()
        );
    }
}
