//! Fig. 7 — how low can the SLO go, and does Clockwork isolate tenants?
//!
//! (left) Workload satisfaction of latency-sensitive (LS) open-loop clients
//! as the SLO multiplier grows from 1× to ~86× the batch-1 ResNet50 latency,
//! for N ∈ {12, 48} models and aggregate rates R ∈ {600, 1200, 2400} r/s on a
//! 6-worker cluster.
//!
//! (right) The same LS satisfaction when batch clients (BC, closed-loop, no
//! SLO) share the cluster: M=0, M=12/C=16, and M=48/C=4, plus the BC
//! throughput achieved in each scenario.

use clockwork::prelude::*;

const BASE_LATENCY_MS: f64 = 2.61; // batch-1 ResNet50, Appendix A

fn slo_multipliers() -> Vec<f64> {
    // 1.0, 1.5, 2.2, 3.4, ... the paper's 1.5x geometric ladder.
    let mut v = vec![1.0];
    while *v.last().unwrap() < 90.0 {
        v.push(v.last().unwrap() * 1.5);
    }
    v
}

fn ls_satisfaction(
    n_models: usize,
    rate_total: f64,
    slo: Nanos,
    batch_clients: usize,
    batch_concurrency: u32,
    seed: u64,
) -> (f64, f64) {
    let zoo = ModelZoo::new();
    let mut system = SystemBuilder::new()
        .workers(6)
        .seed(seed)
        .drop_raw_responses()
        .build();
    let ls_models = system.register_copies(zoo.resnet50(), n_models);
    let bc_models = system.register_copies(zoo.resnet50(), batch_clients);
    let duration = Nanos::from_secs(10);
    let mut rng = SimRng::seeded(seed);
    let trace = OpenLoopClient::generate_many(
        &ls_models,
        rate_total / n_models as f64,
        slo,
        duration,
        &mut rng,
    );
    system.submit_trace(&trace);
    for (i, &m) in bc_models.iter().enumerate() {
        system.add_closed_loop_client(
            ClosedLoopClient::new(m, batch_concurrency, Nanos::MAX),
            Timestamp::from_millis(i as u64),
        );
    }
    system.run_until(Timestamp::ZERO + duration + Nanos::from_secs(1));
    let m = system.telemetry().metrics();
    // Split LS and BC outcomes by model: BC requests have no deadline, so
    // every BC success trivially "meets its SLO"; subtract them out to get
    // the satisfaction of the latency-sensitive clients alone.
    let bc_successes: u64 = bc_models
        .iter()
        .filter_map(|id| system.telemetry().per_model_successes().get(id))
        .sum();
    let ls_total = trace.len() as u64;
    let ls_goodput = m.goodput.saturating_sub(bc_successes);
    let ls_satisfaction = ls_goodput as f64 / ls_total.max(1) as f64;
    let bc_throughput = bc_successes as f64 / duration.as_secs_f64();
    (ls_satisfaction, bc_throughput)
}

fn main() {
    bench::section("Fig 7 (left): LS workload satisfaction vs SLO multiplier (6 workers)");
    println!("slo_multiplier,slo_ms,n12_r600,n12_r1200,n12_r2400,n48_r600,n48_r1200,n48_r2400");
    for &mult in &slo_multipliers() {
        let slo = Nanos::from_millis_f64(BASE_LATENCY_MS * mult);
        let mut row = format!("{mult:.1},{:.2}", slo.as_millis_f64());
        for (n, r) in [
            (12usize, 600.0),
            (12, 1200.0),
            (12, 2400.0),
            (48, 600.0),
            (48, 1200.0),
            (48, 2400.0),
        ] {
            let (sat, _) = ls_satisfaction(n, r, slo, 0, 0, 7_000 + n as u64 + r as u64);
            row.push_str(&format!(",{sat:.3}"));
        }
        println!("{row}");
    }

    bench::section(
        "Fig 7 (right): isolation of LS clients from batch clients (N=6 LS @ 200 r/s each)",
    );
    println!(
        "slo_multiplier,slo_ms,ls_sat_m0,ls_sat_m12_c16,bc_rps_m12_c16,ls_sat_m48_c4,bc_rps_m48_c4"
    );
    for &mult in &slo_multipliers() {
        let slo = Nanos::from_millis_f64(BASE_LATENCY_MS * mult);
        let (a, _) = ls_satisfaction(6, 1200.0, slo, 0, 0, 9_100 + mult as u64);
        let (b, b_tp) = ls_satisfaction(6, 1200.0, slo, 12, 16, 9_200 + mult as u64);
        let (c, c_tp) = ls_satisfaction(6, 1200.0, slo, 48, 4, 9_300 + mult as u64);
        println!(
            "{mult:.1},{:.2},{a:.3},{b:.3},{b_tp:.0},{c:.3},{c_tp:.0}",
            slo.as_millis_f64()
        );
    }
    println!("# LS satisfaction should be essentially unaffected by batch clients,");
    println!("# while BC throughput fills whatever capacity the LS clients leave idle.");
}
