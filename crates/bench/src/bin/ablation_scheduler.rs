//! Ablation — which parts of "consolidating choice" matter?
//!
//! DESIGN.md calls out four design choices; this binary removes them one at a
//! time and measures the effect on goodput and tail latency under the same
//! moderately overloaded open-loop workload:
//!
//! * full Clockwork (batching + admission control + exclusive execution)
//! * no admission control (doomed requests are executed anyway)
//! * no batching (every INFER is batch-1)
//! * concurrent EXEC (the GPU is allowed to run kernels concurrently)
//! * the FIFO strawman scheduler

use bench::{run_closed_loop, RunSummary};
use clockwork::prelude::*;
use clockwork_controller::ClockworkSchedulerConfig;

fn run(
    label: &str,
    factory: Box<dyn SchedulerFactory>,
    exec_override: Option<ExecMode>,
) -> RunSummary {
    let zoo = ModelZoo::new();
    let mut builder = SystemBuilder::new().discipline(factory).seed(424);
    if let Some(mode) = exec_override {
        builder = builder.exec_mode(mode);
    }
    let mut system = builder.build();
    let models = system.register_copies(zoo.resnet50(), 8);
    // Open-loop pressure slightly above single-GPU batch-1 capacity plus
    // closed-loop background to keep the executor busy.
    let trace = OpenLoopClient::generate_many(
        &models,
        60.0,
        Nanos::from_millis(50),
        Nanos::from_secs(10),
        &mut SimRng::seeded(17),
    );
    system.submit_trace(&trace);
    run_closed_loop(
        &mut system,
        &models[..2],
        4,
        Nanos::from_millis(50),
        Nanos::from_secs(11),
    );
    RunSummary::from_system(label, &system)
}

fn main() {
    bench::section("Ablation: contribution of each consolidation-of-choice mechanism");
    println!("{}", RunSummary::csv_header());

    let full = ClockworkSchedulerConfig::default();
    println!(
        "{}",
        run(
            "clockwork_full",
            Box::new(ClockworkFactory::new(full)),
            None
        )
        .csv_row()
    );

    let no_admission = ClockworkSchedulerConfig {
        admission_control: false,
        ..Default::default()
    };
    println!(
        "{}",
        run(
            "no_admission_control",
            Box::new(ClockworkFactory::new(no_admission)),
            None
        )
        .csv_row()
    );

    let no_batching = ClockworkSchedulerConfig {
        batching: false,
        ..Default::default()
    };
    println!(
        "{}",
        run(
            "no_batching",
            Box::new(ClockworkFactory::new(no_batching)),
            None
        )
        .csv_row()
    );

    println!(
        "{}",
        run(
            "concurrent_exec",
            Box::new(ClockworkFactory::default()),
            Some(ExecMode::Concurrent { max_concurrent: 8 })
        )
        .csv_row()
    );

    println!(
        "{}",
        run("fifo_strawman", Box::new(FifoFactory), None).csv_row()
    );

    println!("# expected shape: removing admission control and batching hurts goodput under");
    println!("# overload; concurrent EXEC inflates tail latency; FIFO does both.");
}
