//! SLO-blame attribution: *why* did each request miss, per discipline.
//!
//! The aggregate metrics say how many requests violated their SLO; this
//! binary answers the question they cannot: which lifecycle stage ate the
//! budget. Every (scenario × discipline) cell runs with request-lifecycle
//! tracing on, the recorded spans are reassembled into per-request span
//! trees, each completed request's latency is decomposed into stages —
//! queue wait, cold load, batch wait, execution, network — and every SLO
//! violation is blamed on its dominant stage. Rejections are blamed by
//! their recorded reason (admission estimate, queue deadline expiry,
//! unknown model, fleet fault). Two scenarios are covered: the fleet
//! scenario at 5× its nominal rate (pure overload) and the scripted-churn
//! chaos scenario (faults), across every registered discipline.
//!
//! Conservation is enforced, not assumed: when no spans were dropped, the
//! terminal spans must equal the run's successes, the `rejected` spans its
//! rejections, and at most 1 % of violations+rejections may remain
//! unattributed — any violation exits non-zero. `--check-determinism`
//! reruns every cell and requires identical trace digests and response
//! digests.
//!
//! Results go to `BENCH_blame.json` (schema in `crates/bench/README.md`).
//!
//! Usage:
//! ```text
//! cargo run --release -p bench --bin trace_blame -- \
//!     [--duration-secs N] [--seed N] [--out PATH] \
//!     [--trace-capacity N] [--check-determinism]
//! ```

use std::collections::HashMap;

use clockwork::prelude::*;
use clockwork::scenario::DEFAULT_TRACE_CAPACITY;
use clockwork_baselines::register_baselines;

struct Args {
    duration_secs: u64,
    seed: u64,
    out: String,
    trace_capacity: usize,
    check_determinism: bool,
}

fn parse_args() -> Args {
    let mut args = Args {
        duration_secs: 10,
        seed: 2020,
        out: "BENCH_blame.json".to_string(),
        trace_capacity: DEFAULT_TRACE_CAPACITY,
        check_determinism: false,
    };
    let mut it = std::env::args().skip(1);
    while let Some(flag) = it.next() {
        let mut value = |name: &str| {
            it.next()
                .unwrap_or_else(|| panic!("missing value for {name}"))
        };
        match flag.as_str() {
            "--duration-secs" => {
                args.duration_secs = value("--duration-secs")
                    .parse()
                    .expect("--duration-secs: integer")
            }
            "--seed" => args.seed = value("--seed").parse().expect("--seed: integer"),
            "--out" => args.out = value("--out"),
            "--trace-capacity" => {
                args.trace_capacity = value("--trace-capacity")
                    .parse()
                    .expect("--trace-capacity: integer")
            }
            "--check-determinism" => args.check_determinism = true,
            other => panic!("unknown flag {other}"),
        }
    }
    args
}

/// The blame stages a completed request's latency decomposes into, in the
/// fixed tie-break order used when two stages are equally dominant.
const STAGES: [&str; 5] = [
    "queue_wait",
    "cold_load",
    "batch_wait",
    "execution",
    "network",
];

/// One completed request's reconstructed stage breakdown, all nanoseconds.
#[derive(Clone, Copy, Default)]
struct StageBreakdown {
    queue_wait: u64,
    cold_load: u64,
    batch_wait: u64,
    execution: u64,
    network: u64,
}

impl StageBreakdown {
    fn stage(&self, name: &str) -> u64 {
        match name {
            "queue_wait" => self.queue_wait,
            "cold_load" => self.cold_load,
            "batch_wait" => self.batch_wait,
            "execution" => self.execution,
            "network" => self.network,
            _ => unreachable!("unknown stage {name}"),
        }
    }

    /// The dominant stage, ties resolved in [`STAGES`] order.
    fn dominant(&self) -> &'static str {
        let mut best = STAGES[0];
        for &name in &STAGES[1..] {
            if self.stage(name) > self.stage(best) {
                best = name;
            }
        }
        best
    }
}

/// Running mean/max over one stage across a cell's completed requests.
#[derive(Clone, Copy, Default)]
struct StageStats {
    sum: u64,
    max: u64,
    count: u64,
}

impl StageStats {
    fn record(&mut self, v: u64) {
        self.sum += v;
        self.max = self.max.max(v);
        self.count += 1;
    }

    fn mean_ms(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64 / 1e6
        }
    }

    fn max_ms(&self) -> f64 {
        self.max as f64 / 1e6
    }
}

/// Everything one (scenario, discipline) cell contributes to the table and
/// the JSON, extracted so the run's `ServingSystem` drops before the next.
struct BlameCell {
    discipline: String,
    total: u64,
    successes: u64,
    rejected: u64,
    goodput: u64,
    violations: u64,
    spans: u64,
    dropped_spans: u64,
    trace_digest: u64,
    response_digest: u64,
    terminal_spans: u64,
    rejected_spans: u64,
    stages: [StageStats; 5],
    /// Dominant-stage counts over SLO violations, [`STAGES`] order.
    violation_blame: [u64; 5],
    /// Violations whose span tree was too incomplete to decompose.
    unattributed: u64,
    /// Rejection counts by blame category.
    rejection_blame: Vec<(&'static str, u64)>,
}

/// Maps a rejection reason key to its blame category.
fn rejection_category(reason: &str) -> &'static str {
    match reason {
        "cannot_meet_slo" => "admission_estimate",
        "deadline_elapsed" => "queue_deadline",
        "unknown_model" => "unknown_model",
        // Worker-side rejection is backpressure under overload but can
        // also follow a crash; the mid-flight failure case is separate.
        "worker_rejected" => "worker_backpressure",
        "worker_failed" => "fault",
        // Tier-aware graceful degradation: best-effort traffic shed to
        // protect strict-tier SLOs.
        "best_effort_shed" => "shed",
        _ => "other",
    }
}

fn analyze_cell(report: &RunReport) -> BlameCell {
    let tracer = report.trace().expect("trace_blame runs are always traced");
    let m = report.metrics();

    // First pass: index the span stream by request and action.
    let mut enqueued_at: HashMap<u64, u64> = HashMap::new();
    let mut member_action: HashMap<u64, u64> = HashMap::new();
    let mut batch_members: HashMap<u64, Vec<u64>> = HashMap::new();
    let mut infer_issued_at: HashMap<u64, u64> = HashMap::new();
    let mut infer_actual: HashMap<u64, u64> = HashMap::new();
    // (worker, gpu, model) -> completed LOADs as (end, actual), record order
    // (so ends are non-decreasing per key).
    let mut loads: HashMap<(u32, u32, u32), Vec<(u64, u64)>> = HashMap::new();
    let mut terminal_spans = 0u64;
    let mut rejected_spans = 0u64;
    let mut rejection_counts: HashMap<&'static str, u64> = HashMap::new();
    for record in tracer.records() {
        match &record.event {
            LifecycleEvent::Enqueued { request, .. } => {
                enqueued_at.insert(*request, record.at);
            }
            LifecycleEvent::BatchFormed {
                action, members, ..
            } => {
                for member in members {
                    member_action.insert(*member, *action);
                }
                batch_members.insert(*action, members.clone());
            }
            LifecycleEvent::InferIssued { action, .. } => {
                infer_issued_at.insert(*action, record.at);
            }
            LifecycleEvent::InferDone {
                action,
                actual,
                ok: true,
                ..
            } => {
                infer_actual.insert(*action, *actual);
            }
            LifecycleEvent::LoadDone {
                model,
                worker,
                gpu,
                actual,
                end,
                ok: true,
                ..
            } => {
                loads
                    .entry((*worker, *gpu, *model))
                    .or_default()
                    .push((*end, *actual));
            }
            LifecycleEvent::Rejected { reason, .. } => {
                rejected_spans += 1;
                *rejection_counts
                    .entry(rejection_category(reason))
                    .or_insert(0) += 1;
            }
            LifecycleEvent::Completed { .. } | LifecycleEvent::DeadlineMissed { .. } => {
                terminal_spans += 1;
            }
            _ => {}
        }
    }

    // Second pass: decompose every terminal span, blaming violations on
    // their dominant stage. Spans are visited in record order, which is
    // deterministic for a given seed.
    let mut stages = [StageStats::default(); 5];
    let mut violation_blame = [0u64; 5];
    let mut violations = 0u64;
    let mut unattributed = 0u64;
    for record in tracer.records() {
        let (request, model, arrival, completed, deadline, worker, gpu, cold, missed) =
            match &record.event {
                LifecycleEvent::Completed {
                    request,
                    model,
                    arrival,
                    completed,
                    deadline,
                    worker,
                    gpu,
                    cold,
                    ..
                } => (
                    *request, *model, *arrival, *completed, *deadline, *worker, *gpu, *cold, false,
                ),
                LifecycleEvent::DeadlineMissed {
                    request,
                    model,
                    arrival,
                    completed,
                    deadline,
                    worker,
                    gpu,
                    cold,
                    ..
                } => (
                    *request, *model, *arrival, *completed, *deadline, *worker, *gpu, *cold, true,
                ),
                _ => continue,
            };
        let _ = deadline;
        if missed {
            violations += 1;
        }
        // Reassemble the span tree; a hole (evicted span) leaves the
        // request unattributable.
        let tree = (|| {
            let t0 = *enqueued_at.get(&request)?;
            let action = *member_action.get(&request)?;
            let t1 = *infer_issued_at.get(&action)?;
            let execution = *infer_actual.get(&action)?;
            // Batch wait: the part of [t0, t1] spent waiting for the
            // batch's last member to arrive; the rest is queue/executor
            // wait.
            let last_arrival = batch_members
                .get(&action)
                .into_iter()
                .flatten()
                .filter_map(|member| enqueued_at.get(member))
                .copied()
                .max()
                .unwrap_or(t0);
            let dispatch_wait = t1.saturating_sub(t0);
            let batch_wait = last_arrival.min(t1).saturating_sub(t0);
            let queue_wait = dispatch_wait - batch_wait;
            // Cold load: the most recent completed LOAD of this model on
            // the serving executor that finished by the completion instant.
            let cold_load = if cold {
                loads
                    .get(&(worker, gpu, model))
                    .and_then(|ends| {
                        ends.iter()
                            .rev()
                            .find(|(end, _)| *end <= completed)
                            .map(|(_, actual)| *actual)
                    })
                    .unwrap_or(0)
            } else {
                0
            };
            let total = completed.saturating_sub(arrival);
            let network = total
                .saturating_sub(queue_wait)
                .saturating_sub(batch_wait)
                .saturating_sub(execution)
                .saturating_sub(cold_load);
            Some(StageBreakdown {
                queue_wait,
                cold_load,
                batch_wait,
                execution,
                network,
            })
        })();
        match tree {
            Some(breakdown) => {
                for (i, &name) in STAGES.iter().enumerate() {
                    stages[i].record(breakdown.stage(name));
                }
                if missed {
                    let dominant = breakdown.dominant();
                    let i = STAGES.iter().position(|&s| s == dominant).expect("stage");
                    violation_blame[i] += 1;
                }
            }
            None => {
                if missed {
                    unattributed += 1;
                }
            }
        }
    }

    let mut rejection_blame: Vec<(&'static str, u64)> = rejection_counts.into_iter().collect();
    rejection_blame.sort_unstable();

    BlameCell {
        discipline: report.discipline.clone(),
        total: m.total_requests,
        successes: m.successes,
        rejected: report.rejected(),
        goodput: m.goodput,
        violations,
        spans: tracer.len() as u64,
        dropped_spans: tracer.dropped_spans(),
        trace_digest: tracer.digest(),
        response_digest: report.digest(),
        terminal_spans,
        rejected_spans,
        stages,
        violation_blame,
        unattributed,
        rejection_blame,
    }
}

/// The span-conservation and attribution gates one cell must pass, on top
/// of the universal checks in `bench::invariants`. Prints a loud line per
/// violation and returns `false` if any failed.
fn check_cell(scenario: &str, cell: &BlameCell) -> bool {
    let label = format!("{scenario}/{}", cell.discipline);
    let mut ok = true;
    if cell.dropped_spans > 0 {
        // Attribution is best-effort once the ring wrapped; the drop count
        // is reported, never hidden, and the hard checks below need the
        // full stream.
        println!(
            "# [{label}] {} spans dropped (capacity) -- conservation checks skipped",
            cell.dropped_spans
        );
        return ok;
    }
    if cell.terminal_spans != cell.successes {
        eprintln!(
            "[{label}] TRACE CONSERVATION VIOLATION: {} terminal spans != {} successes",
            cell.terminal_spans, cell.successes
        );
        ok = false;
    }
    if cell.rejected_spans != cell.rejected {
        eprintln!(
            "[{label}] TRACE CONSERVATION VIOLATION: {} rejected spans != {} rejections",
            cell.rejected_spans, cell.rejected
        );
        ok = false;
    }
    let outcomes = cell.violations + cell.rejected;
    if outcomes > 0 {
        let unattributed_frac = cell.unattributed as f64 / outcomes as f64;
        if unattributed_frac > 0.01 {
            eprintln!(
                "[{label}] ATTRIBUTION VIOLATION: {:.2}% of violations+rejections unattributed (max 1%)",
                100.0 * unattributed_frac
            );
            ok = false;
        }
    }
    ok
}

fn cell_json(cell: &BlameCell) -> String {
    let stage_objects: Vec<String> = STAGES
        .iter()
        .enumerate()
        .map(|(i, name)| {
            format!(
                "        \"{name}\": {{ \"mean_ms\": {:.3}, \"max_ms\": {:.3} }}",
                cell.stages[i].mean_ms(),
                cell.stages[i].max_ms()
            )
        })
        .collect();
    let blame_fields: Vec<String> = STAGES
        .iter()
        .enumerate()
        .map(|(i, name)| format!("\"{name}\": {}", cell.violation_blame[i]))
        .collect();
    let rejection_fields: Vec<String> = cell
        .rejection_blame
        .iter()
        .map(|(category, count)| format!("\"{category}\": {count}"))
        .collect();
    format!(
        concat!(
            "    \"{name}\": {{\n",
            "      \"total\": {total},\n",
            "      \"successes\": {successes},\n",
            "      \"rejected\": {rejected},\n",
            "      \"goodput\": {goodput},\n",
            "      \"violations\": {violations},\n",
            "      \"trace\": {{ \"spans\": {spans}, \"dropped_spans\": {dropped}, \"digest\": \"{tdigest:016x}\" }},\n",
            "      \"stages\": {{\n{stages}\n      }},\n",
            "      \"violation_blame\": {{ {blame}, \"unattributed\": {unattributed} }},\n",
            "      \"rejection_blame\": {{{rejections}}},\n",
            "      \"digest\": \"{digest:016x}\"\n",
            "    }}"
        ),
        name = cell.discipline,
        total = cell.total,
        successes = cell.successes,
        rejected = cell.rejected,
        goodput = cell.goodput,
        violations = cell.violations,
        spans = cell.spans,
        dropped = cell.dropped_spans,
        tdigest = cell.trace_digest,
        stages = stage_objects.join(",\n"),
        blame = blame_fields.join(", "),
        unattributed = cell.unattributed,
        rejections = if rejection_fields.is_empty() {
            String::new()
        } else {
            format!(" {} ", rejection_fields.join(", "))
        },
        digest = cell.response_digest,
    )
}

fn main() {
    let args = parse_args();

    let base = |name: &str, multiplier: f64, churn: bool| {
        let mut spec = ScenarioSpec::fleet_scale()
            .named(name)
            .with_seed(args.seed)
            .with_duration_secs(args.duration_secs)
            .with_rate_multiplier(multiplier)
            .with_trace(true)
            .with_trace_capacity(args.trace_capacity);
        if churn {
            spec.faults = spec.scripted_churn();
        }
        spec
    };
    let scenarios = [base("overload_5x", 5.0, false), base("chaos", 1.0, true)];

    let mut registry = SchedulerRegistry::builtin();
    registry.register(Box::new(ClockworkNoBatchFactory::default()));
    register_baselines(&mut registry);

    println!(
        "# trace-blame: {} disciplines ({}) x {} scenarios, {}s, seed {}, trace capacity {}",
        registry.len(),
        registry.names().join(", "),
        scenarios.len(),
        args.duration_secs,
        args.seed,
        args.trace_capacity,
    );

    let mut failed = false;
    let mut scenario_objects: Vec<String> = Vec::new();
    for spec in &scenarios {
        let experiment = Experiment::new(spec.clone());
        bench::section(&format!(
            "{}: dominant-stage blame per discipline",
            spec.name
        ));
        println!(
            "{:<18} {:>8} {:>8} {:>9} {:>7} {:>7} {:>7} {:>7} {:>7} {:>7} {:>8}",
            "discipline",
            "total",
            "viol",
            "rejected",
            "queue",
            "cold",
            "batch",
            "exec",
            "net",
            "unattr",
            "spans"
        );
        let mut cells: Vec<BlameCell> = Vec::new();
        for factory in registry.iter() {
            let report = experiment.run(factory);
            let cell = analyze_cell(&report);
            let label = format!("{}/{}", spec.name, cell.discipline);
            if !bench::invariants::check_run(&label, &report, spec) {
                failed = true;
            }
            if !check_cell(&spec.name, &cell) {
                failed = true;
            }
            if args.check_determinism {
                let rerun = experiment.run(factory);
                let recell = analyze_cell(&rerun);
                if !bench::invariants::check_determinism(&label, &report, &rerun) {
                    failed = true;
                }
                if recell.trace_digest != cell.trace_digest {
                    eprintln!(
                        "[{label}] DETERMINISM VIOLATION: trace digest {:016x} != rerun {:016x}",
                        cell.trace_digest, recell.trace_digest,
                    );
                    failed = true;
                }
            }
            println!(
                "{:<18} {:>8} {:>8} {:>9} {:>7} {:>7} {:>7} {:>7} {:>7} {:>7} {:>8}",
                cell.discipline,
                cell.total,
                cell.violations,
                cell.rejected,
                cell.violation_blame[0],
                cell.violation_blame[1],
                cell.violation_blame[2],
                cell.violation_blame[3],
                cell.violation_blame[4],
                cell.unattributed,
                cell.spans,
            );
            cells.push(cell);
        }
        let discipline_objects: Vec<String> = cells.iter().map(cell_json).collect();
        scenario_objects.push(format!(
            "  \"{name}\": {{\n  \"scenario\": {scenario},\n  \"disciplines\": {{\n{cells}\n  }}\n  }}",
            name = spec.name,
            scenario = bench::scenario_json(spec, u64::MAX),
            cells = discipline_objects.join(",\n"),
        ));
    }

    let json = format!(
        concat!(
            "{{\n",
            "  \"stages\": [\"queue_wait\", \"cold_load\", \"batch_wait\", \"execution\", \"network\"],\n",
            "  \"trace_capacity\": {capacity},\n",
            "  \"determinism_checked\": {checked},\n",
            "{scenarios}\n",
            "}}\n",
        ),
        capacity = args.trace_capacity,
        checked = args.check_determinism,
        scenarios = scenario_objects.join(",\n"),
    );
    std::fs::write(&args.out, &json).expect("write results json");
    println!("# wrote {}", args.out);

    if failed {
        std::process::exit(1);
    }
}
