//! Fig. 9 — how accurate are the controller's predictions?
//!
//! Runs an Azure-like workload with request-lifecycle tracing enabled and
//! reports the distribution of over- and under-prediction errors for INFER
//! and LOAD action durations, and of completion-time errors — for *every*
//! registered discipline, not just clockwork. The estimates come from the
//! tracer's `InferIssued`/`InferDone` and `LoadIssued`/`LoadDone` spans
//! (each `*Done` span carries est vs actual), so any discipline that issues
//! actions gets a prediction-error profile for free; no scheduler downcast
//! is involved.
//!
//! The paper's key observations (for clockwork): the p99 duration error is
//! a few hundred microseconds, the controller deliberately over-predicts
//! slightly more than it under-predicts (it uses a rolling p99), and
//! completion errors compound only a few times the duration error.
//!
//! Usage:
//! ```text
//! cargo run --release -p bench --bin fig9_prediction_error -- \
//!     [--duration-secs N]
//! ```

use std::collections::HashMap;

use clockwork::prelude::*;
use clockwork_baselines::register_baselines;
use clockwork_metrics::percentile::percentile_f64;

fn error_summary(label: &str, errors_us: &[f64]) {
    if errors_us.is_empty() {
        println!("{label}: no samples");
        return;
    }
    let over: Vec<f64> = errors_us.iter().filter(|e| **e < 0.0).map(|e| -e).collect();
    let under: Vec<f64> = errors_us.iter().filter(|e| **e >= 0.0).copied().collect();
    let p = |v: &[f64], q: f64| percentile_f64(v, q).unwrap_or(0.0);
    println!(
        "{label}: n={} under={} over={} p50_under_us={:.0} p99_under_us={:.0} p50_over_us={:.0} p99_over_us={:.0} max_us={:.0}",
        errors_us.len(),
        under.len(),
        over.len(),
        p(&under, 50.0),
        p(&under, 99.0),
        p(&over, 50.0),
        p(&over, 99.0),
        errors_us.iter().map(|e| e.abs()).fold(0.0, f64::max),
    );
}

/// Per-action errors harvested from one traced run, microseconds. Positive
/// means under-prediction (the action ran longer / finished later than
/// estimated), matching the paper's convention.
#[derive(Default)]
struct PredictionErrors {
    infer_duration: Vec<f64>,
    load_duration: Vec<f64>,
    infer_completion: Vec<f64>,
    load_completion: Vec<f64>,
}

fn harvest(report: &RunReport) -> PredictionErrors {
    let tracer = report.trace().expect("fig9 runs are traced");
    // Issue timestamps by action id, for completion-time errors (predicted
    // completion = issue instant + estimate).
    let mut issued_at: HashMap<u64, u64> = HashMap::new();
    let mut errors = PredictionErrors::default();
    for record in tracer.records() {
        match &record.event {
            LifecycleEvent::InferIssued { action, .. }
            | LifecycleEvent::LoadIssued { action, .. } => {
                issued_at.insert(*action, record.at);
            }
            LifecycleEvent::InferDone {
                action,
                est,
                actual,
                end,
                ok: true,
                ..
            } => {
                errors
                    .infer_duration
                    .push((*actual as f64 - *est as f64) / 1e3);
                if let Some(at) = issued_at.get(action) {
                    errors
                        .infer_completion
                        .push((*end as f64 - (*at + *est) as f64) / 1e3);
                }
            }
            LifecycleEvent::LoadDone {
                action,
                est,
                actual,
                end,
                ok: true,
                ..
            } => {
                errors
                    .load_duration
                    .push((*actual as f64 - *est as f64) / 1e3);
                if let Some(at) = issued_at.get(action) {
                    errors
                        .load_completion
                        .push((*end as f64 - (*at + *est) as f64) / 1e3);
                }
            }
            _ => {}
        }
    }
    errors
}

fn main() {
    let mut duration_secs: u64 = 5 * 60;
    let mut it = std::env::args().skip(1);
    while let Some(flag) = it.next() {
        match flag.as_str() {
            "--duration-secs" => {
                duration_secs = it
                    .next()
                    .expect("missing value for --duration-secs")
                    .parse()
                    .expect("--duration-secs: integer")
            }
            other => panic!("unknown flag {other}"),
        }
    }

    let spec = ScenarioSpec {
        name: "fig9_prediction_error".to_string(),
        workers: 6,
        gpus_per_worker: 1,
        models: 120,
        model_set: ModelSet::ZooCycle,
        workload: WorkloadSpec::Azure {
            functions: 400,
            target_rate: 800.0,
        },
        slo_ms: 100,
        duration_secs,
        drain_secs: 2,
        seed: 99,
        workload_seed: 9,
        variance: VarianceConfig::default(),
        keep_responses: false,
        faults: FaultPlan::new(),
        ..ScenarioSpec::smoke(99)
    }
    .with_trace(true)
    .with_trace_capacity(1 << 22);

    let mut registry = SchedulerRegistry::builtin();
    registry.register(Box::new(ClockworkNoBatchFactory::default()));
    register_baselines(&mut registry);
    let experiment = Experiment::new(spec);

    for factory in registry.iter() {
        let report = experiment.run(factory);
        let tracer = report.trace().expect("traced");
        let errors = harvest(&report);
        bench::section(&format!(
            "{}: prediction error over {} requests ({} spans, {} dropped)",
            report.discipline,
            report.submitted,
            tracer.len(),
            tracer.dropped_spans(),
        ));
        println!("action duration error (microseconds):");
        error_summary("  INFER duration", &errors.infer_duration);
        error_summary("  LOAD duration", &errors.load_duration);
        println!("completion time error (microseconds):");
        error_summary("  INFER completion", &errors.infer_completion);
        error_summary("  LOAD completion", &errors.load_completion);
    }
    println!();
    println!("# paper shape (clockwork): p99 duration errors of a few hundred microseconds,");
    println!("# more underprediction than overprediction, completion errors a small multiple.");
}
