//! Fig. 9 — how accurate are the controller's predictions?
//!
//! Runs an Azure-like workload with prediction recording enabled and reports
//! the distribution of over- and under-prediction errors for INFER and LOAD
//! action durations, and of completion-time errors. The paper's key
//! observations: the p99 duration error is a few hundred microseconds, the
//! controller deliberately over-predicts slightly more than it
//! under-predicts (it uses a rolling p99), and completion errors compound
//! only a few times the duration error.

use clockwork::prelude::*;
use clockwork_controller::clockwork_scheduler::PredictionRecord;
use clockwork_metrics::percentile::percentile_f64;

fn error_summary(label: &str, errors_us: &[f64]) {
    if errors_us.is_empty() {
        println!("{label}: no samples");
        return;
    }
    let over: Vec<f64> = errors_us.iter().filter(|e| **e < 0.0).map(|e| -e).collect();
    let under: Vec<f64> = errors_us.iter().filter(|e| **e >= 0.0).copied().collect();
    let p = |v: &[f64], q: f64| percentile_f64(v, q).unwrap_or(0.0);
    println!(
        "{label}: n={} under={} over={} p50_under_us={:.0} p99_under_us={:.0} p50_over_us={:.0} p99_over_us={:.0} max_us={:.0}",
        errors_us.len(),
        under.len(),
        over.len(),
        p(&under, 50.0),
        p(&under, 99.0),
        p(&over, 50.0),
        p(&over, 99.0),
        errors_us.iter().map(|e| e.abs()).fold(0.0, f64::max),
    );
}

fn main() {
    // A tuned Clockwork factory — the registry pattern for configuring a
    // discipline beyond its defaults.
    let scheduler_config = clockwork_controller::ClockworkSchedulerConfig {
        record_predictions: true,
        ..Default::default()
    };
    let factory = ClockworkFactory::new(scheduler_config);

    let spec = ScenarioSpec {
        name: "fig9_prediction_error".to_string(),
        workers: 6,
        gpus_per_worker: 1,
        models: 120,
        model_set: ModelSet::ZooCycle,
        workload: WorkloadSpec::Azure {
            functions: 400,
            target_rate: 800.0,
        },
        slo_ms: 100,
        duration_secs: 5 * 60,
        drain_secs: 2,
        seed: 99,
        workload_seed: 9,
        variance: VarianceConfig::default(),
        keep_responses: false,
        faults: FaultPlan::new(),
    };
    let report = Experiment::new(spec).run(&factory);
    let system = &report.system;

    let predictions: Vec<PredictionRecord> = system
        .clockwork_scheduler()
        .expect("clockwork scheduler configured")
        .predictions()
        .to_vec();
    println!(
        "# {} predictions recorded from {} requests (discipline: {})",
        predictions.len(),
        report.submitted,
        report.discipline
    );

    bench::section("Fig 9 (top): action duration prediction error (microseconds)");
    let infer_errors: Vec<f64> = predictions
        .iter()
        .filter(|p| !p.is_load)
        .map(|p| p.duration_error_ns() as f64 / 1e3)
        .collect();
    let load_errors: Vec<f64> = predictions
        .iter()
        .filter(|p| p.is_load)
        .map(|p| p.duration_error_ns() as f64 / 1e3)
        .collect();
    error_summary("INFER duration", &infer_errors);
    error_summary("LOAD duration", &load_errors);

    bench::section("Fig 9 (bottom): completion time error (microseconds)");
    let infer_completion: Vec<f64> = predictions
        .iter()
        .filter(|p| !p.is_load)
        .map(|p| p.completion_error_ns() as f64 / 1e3)
        .collect();
    let load_completion: Vec<f64> = predictions
        .iter()
        .filter(|p| p.is_load)
        .map(|p| p.completion_error_ns() as f64 / 1e3)
        .collect();
    error_summary("INFER completion", &infer_completion);
    error_summary("LOAD completion", &load_completion);
    println!("# paper shape: p99 duration errors of a few hundred microseconds, more");
    println!("# underprediction than overprediction, completion errors a small multiple.");
}
