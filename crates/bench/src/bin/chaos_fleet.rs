//! Chaos bench: the fleet-scale scenario overlaid with scripted fleet churn.
//!
//! Runs the exact `fleet_scale` cluster (`ScenarioSpec::fleet_scale`) but
//! with a fault plan that kills two workers, fails four additional GPUs,
//! partitions one worker and degrades another's link mid-run, then recovers
//! everything. The point is the paper's central claim under *hard* faults
//! rather than soft interference: goodput dips while capacity is gone,
//! nothing is silently lost (`successes + rejected == total`), goodput only
//! counts on-time responses, and the run stays a pure function of its seed —
//! the fault events themselves are folded into the FNV-1a digest.
//!
//! Results go to `BENCH_chaos.json`: goodput retained during and after the
//! churn window, the fleet-availability floor, and the recovery time from
//! the last repair until steady goodput. The Azure-like workload is
//! non-stationary, so "steady" is defined against offered load, not an
//! absolute rate: a second counts as recovered when its goodput is ≥90 % of
//! the requests that arrived in that second.
//!
//! For the same chaos scenario compared across *all* registered disciplines,
//! see the `chaos_compare` binary.
//!
//! Usage:
//! ```text
//! cargo run --release -p bench --bin chaos_fleet -- \
//!     [--events N] [--out PATH] [--seed N] [--duration-secs N] \
//!     [--check-determinism] [--expect-digest HEX]
//! ```
//!
//! `--duration-secs` scales the whole experiment (trace and churn schedule
//! together); CI runs a short full run twice via `--check-determinism` so
//! the accounting identity and digest stability are both exercised cheaply.

use clockwork::prelude::*;

struct Args {
    max_events: u64,
    out: String,
    seed: u64,
    duration_secs: u64,
    check_determinism: bool,
    expect_digest: Option<u64>,
}

fn parse_args() -> Args {
    let mut args = Args {
        max_events: u64::MAX,
        out: "BENCH_chaos.json".to_string(),
        seed: 2020,
        duration_secs: 120,
        check_determinism: false,
        expect_digest: None,
    };
    let mut it = std::env::args().skip(1);
    while let Some(flag) = it.next() {
        let mut value = |name: &str| {
            it.next()
                .unwrap_or_else(|| panic!("missing value for {name}"))
        };
        match flag.as_str() {
            "--events" => args.max_events = value("--events").parse().expect("--events: integer"),
            "--out" => args.out = value("--out"),
            "--seed" => args.seed = value("--seed").parse().expect("--seed: integer"),
            "--duration-secs" => {
                args.duration_secs = value("--duration-secs")
                    .parse()
                    .expect("--duration-secs: integer")
            }
            "--check-determinism" => args.check_determinism = true,
            "--expect-digest" => {
                let v = value("--expect-digest");
                let hex = v.trim_start_matches("0x");
                args.expect_digest =
                    Some(u64::from_str_radix(hex, 16).expect("--expect-digest: hex u64"));
            }
            other => panic!("unknown flag {other}"),
        }
    }
    args
}

fn main() {
    let args = parse_args();
    // The chaos spec is the fleet spec plus a churn plan — duration first,
    // so the scripted schedule scales with it.
    let mut spec = ScenarioSpec::fleet_scale()
        .named("chaos_fleet")
        .with_seed(args.seed)
        .with_duration_secs(args.duration_secs);
    spec.faults = spec.scripted_churn();
    let plan = spec.faults.clone();
    println!(
        "# chaos-fleet scenario: {} workers x {} GPUs, {} models, {}s, churn: {} worker crashes + {} GPU failures + {} partition(s) + {} degraded link(s)",
        spec.workers,
        spec.gpus_per_worker,
        spec.models,
        spec.duration_secs,
        plan.worker_crashes(),
        plan.gpu_failures(),
        plan.partitions(),
        plan.link_degradations(),
    );

    let experiment = Experiment::new(spec.clone());
    let discipline = ClockworkFactory::default();
    let report = experiment.run_capped(&discipline, args.max_events);
    let mut failed = false;

    if args.check_determinism {
        let again = experiment.run_capped(&discipline, args.max_events);
        if again.digest() != report.digest() {
            eprintln!(
                "DETERMINISM VIOLATION: same seed + same plan produced {:016x} then {:016x}",
                report.digest(),
                again.digest()
            );
            failed = true;
        } else {
            println!(
                "# determinism: two same-seed runs agree ({:016x})",
                report.digest()
            );
        }
    }
    if let Some(expected) = args.expect_digest {
        if expected != report.digest() {
            eprintln!(
                "DIGEST MISMATCH: expected {expected:016x}, got {:016x}",
                report.digest()
            );
            failed = true;
        }
    }

    if !bench::check_chaos_invariants(&report.discipline, &report, &spec) {
        failed = true;
    }

    let m = report.metrics();
    let rejected = report.rejected();
    let analysis = bench::analyze_chaos(&report, &spec);
    let events_per_sec = report.events_per_sec();

    bench::section("chaos_fleet results");
    println!(
        "discipline={} requests={} successes={} rejected={} goodput={} identity_ok={}",
        report.discipline,
        m.total_requests,
        m.successes,
        rejected,
        m.goodput,
        report.identity_ok()
    );
    println!(
        "goodput_rps pre={:.1} churn={:.1} post={:.1}; satisfaction pre={:.4} churn={:.4} post={:.4} (churn retains {:.1}% of pre satisfaction)",
        analysis.pre.rate(),
        analysis.churn.rate(),
        analysis.post.rate(),
        analysis.pre.satisfaction(),
        analysis.churn.satisfaction(),
        analysis.post.satisfaction(),
        100.0 * analysis.retention()
    );
    println!(
        "availability min={:.4} final={:.4} recovery_secs={:.1}",
        analysis.min_availability, analysis.final_availability, analysis.recovery_secs
    );
    println!(
        "events={} wall_secs={:.2} events_per_sec={events_per_sec:.0} peak_rss_kb={}",
        report.events_processed(),
        report.wall_secs,
        bench::peak_rss_kb()
    );
    println!("digest={:016x}", report.digest());

    bench::section("scheduler self-profiling");
    let sched = report.sched_stats();
    bench::report_sched_profile(&report.discipline, &sched);

    // Event-mix breakdown + conservation check; churn cancels wakes en
    // masse (crashed workers never act again), so the cancelled column is
    // part of the chaos story, not just perf hygiene.
    let live = report.live_events();
    if !bench::report_event_mix(report.event_mix(), live) {
        failed = true;
    }
    let events_json = bench::event_mix_json(report.event_mix(), live);

    let json = format!(
        concat!(
            "{{\n",
            "  \"scenario\": {scenario},\n",
            "  \"discipline\": \"{discipline}\",\n",
            "  \"churn\": {{\n",
            "    \"worker_crashes\": {crashes},\n",
            "    \"gpu_failures\": {gpu_failures},\n",
            "    \"partitions\": {partitions},\n",
            "    \"link_degradations\": {degradations},\n",
            "    \"first_fault_secs\": {first_fault:.3},\n",
            "    \"last_recovery_secs\": {last_recovery:.3}\n",
            "  }},\n",
            "  \"phases\": {{\n",
            "    \"pre\": {{ \"secs\": {pre_secs:.1}, \"arrivals\": {pre_arrivals}, \"goodput\": {pre_goodput}, \"goodput_rps\": {pre_rate:.1}, \"satisfaction\": {pre_sat:.4} }},\n",
            "    \"churn\": {{ \"secs\": {churn_secs:.1}, \"arrivals\": {churn_arrivals}, \"goodput\": {churn_goodput}, \"goodput_rps\": {churn_rate:.1}, \"satisfaction\": {churn_sat:.4} }},\n",
            "    \"post\": {{ \"secs\": {post_secs:.1}, \"arrivals\": {post_arrivals}, \"goodput\": {post_goodput}, \"goodput_rps\": {post_rate:.1}, \"satisfaction\": {post_sat:.4} }},\n",
            "    \"churn_satisfaction_retention\": {retention:.4}\n",
            "  }},\n",
            "  \"availability\": {{ \"min\": {avail_min:.4}, \"final\": {avail_final:.4} }},\n",
            "  \"recovery\": {{ \"recovery_secs\": {recovery:.1}, \"steady_fraction_of_arrivals\": {steady:.2} }},\n",
            "  \"accounting\": {{\n",
            "    \"total\": {total},\n",
            "    \"successes\": {successes},\n",
            "    \"rejected\": {rejected},\n",
            "    \"goodput\": {goodput},\n",
            "    \"identity_ok\": {identity_ok},\n",
            "    \"drained\": {drained}\n",
            "  }},\n",
            "  \"perf\": {{\n",
            "    \"events_processed\": {events},\n",
            "    \"wall_secs\": {wall:.3},\n",
            "    \"events_per_sec\": {eps:.0},\n",
            "    \"peak_rss_kb\": {rss}\n",
            "  }},\n",
            "  \"events\": {events_json},\n",
            "  \"sched\": {sched_json},\n",
            "  \"digest\": \"{digest:016x}\"\n",
            "}}\n",
        ),
        scenario = bench::scenario_json(&spec, args.max_events),
        discipline = report.discipline,
        crashes = plan.worker_crashes(),
        gpu_failures = plan.gpu_failures(),
        partitions = plan.partitions(),
        degradations = plan.link_degradations(),
        first_fault = analysis.first_fault_secs,
        last_recovery = analysis.last_recovery_secs,
        pre_secs = analysis.pre.secs,
        pre_arrivals = analysis.pre.arrivals,
        pre_goodput = analysis.pre.goodput,
        pre_rate = analysis.pre.rate(),
        pre_sat = analysis.pre.satisfaction(),
        churn_secs = analysis.churn.secs,
        churn_arrivals = analysis.churn.arrivals,
        churn_goodput = analysis.churn.goodput,
        churn_rate = analysis.churn.rate(),
        churn_sat = analysis.churn.satisfaction(),
        post_secs = analysis.post.secs,
        post_arrivals = analysis.post.arrivals,
        post_goodput = analysis.post.goodput,
        post_rate = analysis.post.rate(),
        post_sat = analysis.post.satisfaction(),
        retention = analysis.retention(),
        avail_min = analysis.min_availability,
        avail_final = analysis.final_availability,
        recovery = analysis.recovery_secs,
        steady = bench::STEADY_FRACTION,
        total = m.total_requests,
        successes = m.successes,
        rejected = rejected,
        goodput = m.goodput,
        identity_ok = report.identity_ok(),
        drained = report.drained(),
        events = report.events_processed(),
        wall = report.wall_secs,
        eps = events_per_sec,
        rss = bench::peak_rss_kb(),
        events_json = events_json,
        sched_json = bench::sched_json(&sched),
        digest = report.digest(),
    );
    std::fs::write(&args.out, &json).expect("write results json");
    println!("# wrote {}", args.out);

    if failed {
        std::process::exit(1);
    }
}
