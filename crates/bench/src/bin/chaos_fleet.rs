//! Chaos bench: the fleet-scale scenario overlaid with scripted fleet churn.
//!
//! Runs the exact `fleet_scale` cluster (see [`bench::FleetScenario`]) but
//! with a fault plan that kills two workers, fails four additional GPUs,
//! partitions one worker and degrades another's link mid-run, then recovers
//! everything. The point is the paper's central claim under *hard* faults
//! rather than soft interference: goodput dips while capacity is gone,
//! nothing is silently lost (`successes + rejected == total`), goodput only
//! counts on-time responses, and the run stays a pure function of its seed —
//! the fault events themselves are folded into the FNV-1a digest.
//!
//! Results go to `BENCH_chaos.json`: goodput retained during and after the
//! churn window, the fleet-availability floor, and the recovery time from
//! the last repair until steady goodput. The Azure-like workload is
//! non-stationary, so "steady" is defined against offered load, not an
//! absolute rate: a second counts as recovered when its goodput is ≥90 % of
//! the requests that arrived in that second.
//!
//! Usage:
//! ```text
//! cargo run --release -p bench --bin chaos_fleet -- \
//!     [--events N] [--out PATH] [--seed N] [--duration-secs N] \
//!     [--check-determinism] [--expect-digest HEX]
//! ```
//!
//! `--duration-secs` scales the whole experiment (trace and churn schedule
//! together); CI runs a short full run twice via `--check-determinism` so
//! the accounting identity and digest stability are both exercised cheaply.

use std::time::Instant;

use bench::FleetScenario;
use clockwork::prelude::*;

/// Per-second goodput/arrivals fraction that counts as "recovered".
const STEADY_FRACTION: f64 = 0.9;

struct Args {
    max_events: u64,
    out: String,
    seed: u64,
    duration_secs: u64,
    check_determinism: bool,
    expect_digest: Option<u64>,
}

fn parse_args() -> Args {
    let mut args = Args {
        max_events: u64::MAX,
        out: "BENCH_chaos.json".to_string(),
        seed: 2020,
        duration_secs: 120,
        check_determinism: false,
        expect_digest: None,
    };
    let mut it = std::env::args().skip(1);
    while let Some(flag) = it.next() {
        let mut value = |name: &str| {
            it.next()
                .unwrap_or_else(|| panic!("missing value for {name}"))
        };
        match flag.as_str() {
            "--events" => args.max_events = value("--events").parse().expect("--events: integer"),
            "--out" => args.out = value("--out"),
            "--seed" => args.seed = value("--seed").parse().expect("--seed: integer"),
            "--duration-secs" => {
                args.duration_secs = value("--duration-secs")
                    .parse()
                    .expect("--duration-secs: integer")
            }
            "--check-determinism" => args.check_determinism = true,
            "--expect-digest" => {
                let v = value("--expect-digest");
                let hex = v.trim_start_matches("0x");
                args.expect_digest =
                    Some(u64::from_str_radix(hex, 16).expect("--expect-digest: hex u64"));
            }
            other => panic!("unknown flag {other}"),
        }
    }
    args
}

/// The scripted churn schedule, scaled to the scenario duration: two worker
/// crashes, four extra GPU failures, one partition window and one degraded
/// link, all recovered by 60 % of the run so the tail measures recovery.
fn churn_plan(scenario: &FleetScenario) -> FaultPlan {
    let span = scenario.duration_secs as f64 * 1e9;
    let at = |f: f64| Timestamp::from_nanos((f * span) as u64);
    let lasting = |f: f64| Nanos::from_nanos((f * span) as u64);
    let worker = |i: u32| i % scenario.workers.max(1);
    let gpu = |g: u32| g % scenario.gpus_per_worker.max(1);
    FaultPlan::new()
        .crash_worker_for(at(0.20), worker(3), lasting(0.30))
        .crash_worker_for(at(0.25), worker(11), lasting(0.30))
        .fail_gpu_for(at(0.30), worker(0), gpu(1), lasting(0.30))
        .fail_gpu_for(at(0.32), worker(5), gpu(2), lasting(0.26))
        .fail_gpu_for(at(0.34), worker(8), gpu(0), lasting(0.24))
        .fail_gpu_for(at(0.36), worker(14), gpu(3), lasting(0.22))
        .partition(at(0.35), worker(7), lasting(0.10))
        .degrade_link_for(at(0.40), worker(16), 4.0, lasting(0.15))
}

struct RunOutcome {
    digest: u64,
    metrics: ExperimentMetrics,
    min_availability: f64,
    final_availability: f64,
    pre_goodput: u64,
    pre_arrivals: u64,
    churn_goodput: u64,
    churn_arrivals: u64,
    post_goodput: u64,
    post_arrivals: u64,
    recovery_secs: f64,
    events: u64,
    wall_secs: f64,
    drained: bool,
    mix: EventMix,
    live_events: u64,
}

fn run_once(scenario: &FleetScenario, plan: &FaultPlan, max_events: u64) -> RunOutcome {
    let trace = scenario.trace();
    let mut system = scenario.build_system(plan.clone());
    system.submit_trace(&trace);

    let started = Instant::now();
    system.run_until_events(scenario.horizon(), max_events);
    let wall_secs = started.elapsed().as_secs_f64();

    let telemetry = system.telemetry();
    let first_fault = plan.first_at().unwrap_or(Timestamp::ZERO);
    let last_recovery = plan.last_recovery_at().unwrap_or(first_fault);
    let end = Timestamp::ZERO + scenario.duration();
    let tick = Nanos::from_secs(1);

    let pre_goodput = telemetry.goodput_between(Timestamp::ZERO, first_fault - tick);
    let pre_arrivals = telemetry.arrivals_between(Timestamp::ZERO, first_fault - tick);
    let churn_goodput = telemetry.goodput_between(first_fault, last_recovery - tick);
    let churn_arrivals = telemetry.arrivals_between(first_fault, last_recovery - tick);
    let post_goodput = telemetry.goodput_between(last_recovery, end);
    let post_arrivals = telemetry.arrivals_between(last_recovery, end);

    // Recovery time: from the last repair until a per-second bucket's
    // goodput is back to >= STEADY_FRACTION of the requests that arrived in
    // that bucket. The offered load is non-stationary, so steadiness is
    // relative to arrivals rather than to an absolute pre-churn rate.
    let goodput = &telemetry.goodput_series;
    let arrivals = &telemetry.request_series;
    let from_bucket = (last_recovery.as_nanos() / tick.as_nanos()) as usize;
    let to_bucket = (end.as_nanos() / tick.as_nanos()) as usize;
    let mut recovery_secs = -1.0;
    for bucket in from_bucket..=to_bucket {
        let offered = arrivals.count_at(bucket);
        if offered == 0 {
            continue;
        }
        if goodput.count_at(bucket) as f64 >= STEADY_FRACTION * offered as f64 {
            let bucket_start = bucket as f64; // 1 s buckets
            recovery_secs = (bucket_start - last_recovery.as_nanos() as f64 / 1e9).max(0.0);
            break;
        }
    }

    RunOutcome {
        digest: telemetry.response_digest(),
        min_availability: telemetry.min_availability(),
        final_availability: telemetry.final_availability(),
        metrics: telemetry.metrics(),
        pre_goodput,
        pre_arrivals,
        churn_goodput,
        churn_arrivals,
        post_goodput,
        post_arrivals,
        recovery_secs,
        events: system.events_processed(),
        wall_secs,
        drained: system.events_processed() < max_events,
        mix: telemetry.event_mix().clone(),
        live_events: system.pending_events(),
    }
}

fn main() {
    let args = parse_args();
    let scenario = FleetScenario {
        seed: args.seed,
        duration_secs: args.duration_secs,
        ..Default::default()
    };
    let plan = churn_plan(&scenario);
    println!(
        "# chaos-fleet scenario: {} workers x {} GPUs, {} models, {}s, churn: {} worker crashes + {} GPU failures + {} partition(s) + {} degraded link(s)",
        scenario.workers,
        scenario.gpus_per_worker,
        scenario.models,
        scenario.duration_secs,
        plan.worker_crashes(),
        plan.gpu_failures(),
        plan.partitions(),
        plan.link_degradations(),
    );

    let outcome = run_once(&scenario, &plan, args.max_events);
    let mut failed = false;

    if args.check_determinism {
        let again = run_once(&scenario, &plan, args.max_events);
        if again.digest != outcome.digest {
            eprintln!(
                "DETERMINISM VIOLATION: same seed + same plan produced {:016x} then {:016x}",
                outcome.digest, again.digest
            );
            failed = true;
        } else {
            println!(
                "# determinism: two same-seed runs agree ({:016x})",
                outcome.digest
            );
        }
    }
    if let Some(expected) = args.expect_digest {
        if expected != outcome.digest {
            eprintln!(
                "DIGEST MISMATCH: expected {expected:016x}, got {:016x}",
                outcome.digest
            );
            failed = true;
        }
    }

    let m = &outcome.metrics;
    let rejected: u64 = m.rejections.values().sum();
    let identity_ok = m.successes + rejected == m.total_requests;
    if outcome.drained && !identity_ok {
        eprintln!(
            "ACCOUNTING VIOLATION: successes {} + rejected {} != total {}",
            m.successes, rejected, m.total_requests
        );
        failed = true;
    }
    // Even an interrupted run must never answer a request twice.
    if !outcome.drained && m.successes + rejected > m.total_requests {
        eprintln!(
            "DUPLICATE RESPONSES: successes {} + rejected {} > total {}",
            m.successes, rejected, m.total_requests
        );
        failed = true;
    }
    // Goodput only counts on-time responses: nothing in the goodput latency
    // histogram may exceed the SLO.
    let slo = Nanos::from_millis(scenario.slo_ms);
    if m.goodput > 0 && m.goodput_latency.max() > slo {
        eprintln!(
            "GOODPUT VIOLATION: a response counted as goodput took {} > SLO {}",
            m.goodput_latency.max(),
            slo
        );
        failed = true;
    }

    let first_fault_secs = plan
        .first_at()
        .map(|t| t.as_nanos() as f64 / 1e9)
        .unwrap_or(0.0);
    let last_recovery_secs = plan
        .last_recovery_at()
        .map(|t| t.as_nanos() as f64 / 1e9)
        .unwrap_or(0.0);
    let pre_secs = first_fault_secs.max(1e-9);
    let churn_secs = (last_recovery_secs - first_fault_secs).max(1e-9);
    let post_secs = (scenario.duration_secs as f64 - last_recovery_secs).max(1e-9);
    let pre_rate = outcome.pre_goodput as f64 / pre_secs;
    let churn_rate = outcome.churn_goodput as f64 / churn_secs;
    let post_rate = outcome.post_goodput as f64 / post_secs;
    let phase_satisfaction =
        |goodput: u64, arrivals: u64| goodput as f64 / (arrivals.max(1) as f64);
    let pre_sat = phase_satisfaction(outcome.pre_goodput, outcome.pre_arrivals);
    let churn_sat = phase_satisfaction(outcome.churn_goodput, outcome.churn_arrivals);
    let post_sat = phase_satisfaction(outcome.post_goodput, outcome.post_arrivals);
    // Retention compares satisfaction (goodput over offered load), which is
    // meaningful even though the trace's offered rate varies over time.
    let retention = if pre_sat > 0.0 {
        churn_sat / pre_sat
    } else {
        0.0
    };
    let events_per_sec = if outcome.wall_secs > 0.0 {
        outcome.events as f64 / outcome.wall_secs
    } else {
        0.0
    };

    bench::section("chaos_fleet results");
    println!(
        "requests={} successes={} rejected={} goodput={} identity_ok={}",
        m.total_requests, m.successes, rejected, m.goodput, identity_ok
    );
    println!(
        "goodput_rps pre={pre_rate:.1} churn={churn_rate:.1} post={post_rate:.1}; satisfaction pre={pre_sat:.4} churn={churn_sat:.4} post={post_sat:.4} (churn retains {:.1}% of pre satisfaction)",
        100.0 * retention
    );
    println!(
        "availability min={:.4} final={:.4} recovery_secs={:.1}",
        outcome.min_availability, outcome.final_availability, outcome.recovery_secs
    );
    println!(
        "events={} wall_secs={:.2} events_per_sec={events_per_sec:.0} peak_rss_kb={}",
        outcome.events,
        outcome.wall_secs,
        bench::peak_rss_kb()
    );
    println!("digest={:016x}", outcome.digest);

    // Event-mix breakdown + conservation check; churn cancels wakes en
    // masse (crashed workers never act again), so the cancelled column is
    // part of the chaos story, not just perf hygiene.
    if !bench::report_event_mix(&outcome.mix, outcome.live_events) {
        failed = true;
    }
    let events_json = bench::event_mix_json(&outcome.mix, outcome.live_events);

    let json = format!(
        concat!(
            "{{\n",
            "  \"scenario\": {{\n",
            "    \"workers\": {workers},\n",
            "    \"gpus_per_worker\": {gpus},\n",
            "    \"models\": {models},\n",
            "    \"functions\": {functions},\n",
            "    \"duration_secs\": {duration},\n",
            "    \"target_rate\": {rate},\n",
            "    \"slo_ms\": {slo},\n",
            "    \"seed\": {seed},\n",
            "    \"max_events\": {max_events}\n",
            "  }},\n",
            "  \"churn\": {{\n",
            "    \"worker_crashes\": {crashes},\n",
            "    \"gpu_failures\": {gpu_failures},\n",
            "    \"partitions\": {partitions},\n",
            "    \"link_degradations\": {degradations},\n",
            "    \"first_fault_secs\": {first_fault:.3},\n",
            "    \"last_recovery_secs\": {last_recovery:.3}\n",
            "  }},\n",
            "  \"phases\": {{\n",
            "    \"pre\": {{ \"secs\": {pre_secs:.1}, \"arrivals\": {pre_arrivals}, \"goodput\": {pre_goodput}, \"goodput_rps\": {pre_rate:.1}, \"satisfaction\": {pre_sat:.4} }},\n",
            "    \"churn\": {{ \"secs\": {churn_secs:.1}, \"arrivals\": {churn_arrivals}, \"goodput\": {churn_goodput}, \"goodput_rps\": {churn_rate:.1}, \"satisfaction\": {churn_sat:.4} }},\n",
            "    \"post\": {{ \"secs\": {post_secs:.1}, \"arrivals\": {post_arrivals}, \"goodput\": {post_goodput}, \"goodput_rps\": {post_rate:.1}, \"satisfaction\": {post_sat:.4} }},\n",
            "    \"churn_satisfaction_retention\": {retention:.4}\n",
            "  }},\n",
            "  \"availability\": {{ \"min\": {avail_min:.4}, \"final\": {avail_final:.4} }},\n",
            "  \"recovery\": {{ \"recovery_secs\": {recovery:.1}, \"steady_fraction_of_arrivals\": {steady:.2} }},\n",
            "  \"accounting\": {{\n",
            "    \"total\": {total},\n",
            "    \"successes\": {successes},\n",
            "    \"rejected\": {rejected},\n",
            "    \"goodput\": {goodput},\n",
            "    \"identity_ok\": {identity_ok},\n",
            "    \"drained\": {drained}\n",
            "  }},\n",
            "  \"perf\": {{\n",
            "    \"events_processed\": {events},\n",
            "    \"wall_secs\": {wall:.3},\n",
            "    \"events_per_sec\": {eps:.0},\n",
            "    \"peak_rss_kb\": {rss}\n",
            "  }},\n",
            "  \"events\": {events_json},\n",
            "  \"digest\": \"{digest:016x}\"\n",
            "}}\n",
        ),
        workers = scenario.workers,
        gpus = scenario.gpus_per_worker,
        models = scenario.models,
        functions = scenario.functions,
        duration = scenario.duration_secs,
        rate = scenario.target_rate,
        slo = scenario.slo_ms,
        seed = args.seed,
        max_events = if args.max_events == u64::MAX { 0 } else { args.max_events },
        crashes = plan.worker_crashes(),
        gpu_failures = plan.gpu_failures(),
        partitions = plan.partitions(),
        degradations = plan.link_degradations(),
        first_fault = first_fault_secs,
        last_recovery = last_recovery_secs,
        pre_secs = pre_secs,
        pre_arrivals = outcome.pre_arrivals,
        pre_goodput = outcome.pre_goodput,
        pre_rate = pre_rate,
        pre_sat = pre_sat,
        churn_secs = churn_secs,
        churn_arrivals = outcome.churn_arrivals,
        churn_goodput = outcome.churn_goodput,
        churn_rate = churn_rate,
        churn_sat = churn_sat,
        post_secs = post_secs,
        post_arrivals = outcome.post_arrivals,
        post_goodput = outcome.post_goodput,
        post_rate = post_rate,
        post_sat = post_sat,
        retention = retention,
        avail_min = outcome.min_availability,
        avail_final = outcome.final_availability,
        recovery = outcome.recovery_secs,
        steady = STEADY_FRACTION,
        total = m.total_requests,
        successes = m.successes,
        rejected = rejected,
        goodput = m.goodput,
        identity_ok = identity_ok,
        drained = outcome.drained,
        events = outcome.events,
        wall = outcome.wall_secs,
        eps = events_per_sec,
        rss = bench::peak_rss_kb(),
        events_json = events_json,
        digest = outcome.digest,
    );
    std::fs::write(&args.out, &json).expect("write results json");
    println!("# wrote {}", args.out);

    if failed {
        std::process::exit(1);
    }
}
