//! The batching figure: goodput and tail latency vs offered load, with and
//! without batch-aware scheduling.
//!
//! The fleet-scale scenario (20 workers x 4 GPUs, 200 models, Azure-like
//! arrivals at a 1,500 r/s nominal rate) is swept across offered-load
//! multipliers — 1x, 2x, 5x and 10x — and at every load each registered
//! discipline runs the *same* trace: Clockwork with batch formation and
//! batch-amortized admission, `clockwork-nobatch` (the identical scheduler
//! pinned to batch size 1 — the honest before/after comparator), the FIFO
//! strawman, and the Clipper- and INFaaS-like baselines. Because the only
//! difference between `clockwork` and `clockwork-nobatch` is batch-aware
//! scheduling, the gap between their goodput columns *is* the value of
//! batching, and the load where each one's goodput stops tracking offered
//! load is its saturation knee. Batch-amortized execution moves that knee
//! to the right; this binary is the proof and `BENCH_batch.json` the
//! artifact (schema in `crates/bench/README.md`).
//!
//! Invariants are enforced per run, not just reported: event-mix
//! conservation (`pushed == delivered + cancelled + live`) always,
//! exactly-once accounting (`successes + rejected == total`) whenever the
//! run drained, no goodput entry past its SLO, and — the point of the
//! figure — clockwork's goodput must strictly exceed `clockwork-nobatch`'s
//! at every overloaded multiplier (>= 2x). Any violation exits non-zero.
//!
//! Usage:
//! ```text
//! cargo run --release -p bench --bin batch_sweep -- \
//!     [--duration-secs N] [--events N] [--out PATH] [--seed N] \
//!     [--base-rate R] [--check-determinism]
//! ```
//!
//! `--check-determinism` reruns every (discipline, load) cell and fails the
//! process when any response digest differs between the two runs — the same
//! run-to-run guarantee the facade's determinism tests pin, exercised here
//! at full sweep scale. CI's smoke step runs the sweep at `--duration-secs
//! 10` with this flag on.

use clockwork::prelude::*;
use clockwork_baselines::register_baselines;

/// The offered-load multipliers swept over the base rate.
const MULTIPLIERS: [f64; 4] = [1.0, 2.0, 5.0, 10.0];

struct Args {
    max_events: u64,
    out: String,
    seed: u64,
    duration_secs: u64,
    base_rate: f64,
    check_determinism: bool,
}

fn parse_args() -> Args {
    let mut args = Args {
        max_events: u64::MAX,
        out: "BENCH_batch.json".to_string(),
        seed: 2020,
        duration_secs: 30,
        base_rate: 1_500.0,
        check_determinism: false,
    };
    let mut it = std::env::args().skip(1);
    while let Some(flag) = it.next() {
        let mut value = |name: &str| {
            it.next()
                .unwrap_or_else(|| panic!("missing value for {name}"))
        };
        match flag.as_str() {
            "--events" => args.max_events = value("--events").parse().expect("--events: integer"),
            "--out" => args.out = value("--out"),
            "--seed" => args.seed = value("--seed").parse().expect("--seed: integer"),
            "--duration-secs" => {
                args.duration_secs = value("--duration-secs")
                    .parse()
                    .expect("--duration-secs: integer")
            }
            "--base-rate" => {
                args.base_rate = value("--base-rate").parse().expect("--base-rate: float")
            }
            "--check-determinism" => args.check_determinism = true,
            other => panic!("unknown flag {other}"),
        }
    }
    args
}

/// One (discipline, load) cell of the sweep, extracted so each run's full
/// `ServingSystem` drops before the next one starts.
struct SweepRow {
    discipline: String,
    summary: bench::RunSummary,
    successes: u64,
    rejected: u64,
    identity_ok: bool,
    drained: bool,
    live_events: u64,
    events_processed: u64,
    wall_secs: f64,
    digest: u64,
    sched: SchedProfile,
}

impl SweepRow {
    fn summarize(report: &RunReport) -> Self {
        let m = report.metrics();
        SweepRow {
            discipline: report.discipline.clone(),
            summary: bench::RunSummary::from_report(report.discipline.clone(), report),
            successes: m.successes,
            rejected: report.rejected(),
            identity_ok: report.identity_ok(),
            drained: report.drained(),
            live_events: report.live_events(),
            events_processed: report.events_processed(),
            wall_secs: report.wall_secs,
            digest: report.digest(),
            sched: report.sched_stats(),
        }
    }
}

fn main() {
    let args = parse_args();
    let mut registry = SchedulerRegistry::builtin();
    registry.register(Box::new(ClockworkNoBatchFactory::default()));
    register_baselines(&mut registry);

    let base = ScenarioSpec::fleet_scale()
        .named("batch_sweep")
        .with_seed(args.seed)
        .with_duration_secs(args.duration_secs);
    let base_rate = match base.workload {
        WorkloadSpec::Azure { target_rate, .. } => target_rate,
        _ => unreachable!("fleet_scale is an Azure workload"),
    };
    let scale = args.base_rate / base_rate;

    println!(
        "# batch-sweep: {} disciplines ({}) x {} loads ({} r/s base, {}s each{})",
        registry.len(),
        registry.names().join(", "),
        MULTIPLIERS.len(),
        args.base_rate,
        args.duration_secs,
        if args.check_determinism {
            ", determinism checked"
        } else {
            ""
        },
    );

    let mut failed = false;
    // rows[i] holds all discipline rows for MULTIPLIERS[i].
    let mut rows: Vec<Vec<SweepRow>> = Vec::new();
    for &multiplier in &MULTIPLIERS {
        let spec = base.clone().with_rate_multiplier(scale * multiplier);
        let experiment = Experiment::new(spec.clone());
        let mut load_rows: Vec<SweepRow> = Vec::new();
        for factory in registry.iter() {
            let label = factory.name();
            println!("# running {label} at {multiplier}x...");
            let report = experiment.run_capped(factory, args.max_events);
            let cell = format!("{label} @{multiplier}x");
            if !bench::invariants::check_run(&cell, &report, &spec) {
                failed = true;
            }
            if args.check_determinism {
                let rerun = experiment.run_capped(factory, args.max_events);
                if !bench::invariants::check_determinism(&cell, &report, &rerun) {
                    failed = true;
                }
            }
            load_rows.push(SweepRow::summarize(&report));
        }
        rows.push(load_rows);
    }

    bench::section("batch_sweep results (same trace per load, policy is the only difference)");
    for (i, load_rows) in rows.iter().enumerate() {
        let multiplier = MULTIPLIERS[i];
        println!();
        println!(
            "-- {multiplier}x offered load ({:.0} r/s) --",
            args.base_rate * multiplier
        );
        println!(
            "{:<18} {:>9} {:>9} {:>9} {:>9} {:>6} {:>9} {:>9} {:>7}",
            "discipline",
            "total",
            "goodput",
            "rejected",
            "good_rps",
            "sat",
            "p99_ms",
            "mean_b",
            "backlog"
        );
        for row in load_rows {
            let s = &row.summary;
            println!(
                "{:<18} {:>9} {:>9} {:>9} {:>9.1} {:>6.3} {:>9.2} {:>9.2} {:>7}",
                row.discipline,
                s.total,
                s.goodput,
                row.rejected,
                s.goodput_rate,
                s.satisfaction,
                s.p99_ms,
                s.mean_batch,
                s.total
                    .saturating_sub(row.successes)
                    .saturating_sub(row.rejected),
            );
        }
    }

    // The knee gate: batching must buy strictly more goodput than batch-1
    // dispatch at every overloaded multiplier. At 1x the cluster is below
    // saturation and the two are expected to tie (often digest-identical),
    // so only >= 2x is gated.
    bench::section("saturation knee (clockwork vs clockwork-nobatch goodput)");
    for (i, load_rows) in rows.iter().enumerate() {
        let multiplier = MULTIPLIERS[i];
        let goodput_of = |name: &str| {
            load_rows
                .iter()
                .find(|r| r.discipline == name)
                .map(|r| r.summary.goodput)
        };
        let (Some(batched), Some(unbatched)) =
            (goodput_of("clockwork"), goodput_of("clockwork-nobatch"))
        else {
            eprintln!("KNEE GATE: clockwork or clockwork-nobatch missing from the registry");
            failed = true;
            break;
        };
        let verdict = if multiplier < 2.0 {
            "ungated"
        } else if batched > unbatched {
            "ok"
        } else {
            failed = true;
            "VIOLATION"
        };
        println!(
            "{multiplier:>4}x: batched {batched} vs unbatched {unbatched} ({:+.1}%) {verdict}",
            100.0 * (batched as f64 - unbatched as f64) / (unbatched.max(1) as f64),
        );
        if verdict == "VIOLATION" {
            eprintln!(
                "KNEE GATE VIOLATION at {multiplier}x: batching goodput {batched} <= batch-1 goodput {unbatched}"
            );
        }
    }

    let load_objects: Vec<String> = rows
        .iter()
        .enumerate()
        .map(|(i, load_rows)| {
            let discipline_objects: Vec<String> = load_rows
                .iter()
                .map(|row| {
                    let s = &row.summary;
                    format!(
                        concat!(
                            "        \"{name}\": {{\n",
                            "          \"total\": {total},\n",
                            "          \"successes\": {successes},\n",
                            "          \"rejected\": {rejected},\n",
                            "          \"goodput\": {goodput},\n",
                            "          \"goodput_rps\": {goodput_rps:.1},\n",
                            "          \"satisfaction\": {satisfaction:.4},\n",
                            "          \"p50_ms\": {p50:.2},\n",
                            "          \"p99_ms\": {p99:.2},\n",
                            "          \"mean_batch\": {mean_batch:.3},\n",
                            "          \"cold_fraction\": {cold:.4},\n",
                            "          \"identity_ok\": {identity_ok},\n",
                            "          \"drained\": {drained},\n",
                            "          \"live_events\": {live},\n",
                            "          \"events_processed\": {events},\n",
                            "          \"wall_secs\": {wall:.3},\n",
                            "          \"sched\": {sched},\n",
                            "          \"digest\": \"{digest:016x}\"\n",
                            "        }}"
                        ),
                        name = row.discipline,
                        total = s.total,
                        successes = row.successes,
                        rejected = row.rejected,
                        goodput = s.goodput,
                        goodput_rps = s.goodput_rate,
                        satisfaction = s.satisfaction,
                        p50 = s.p50_ms,
                        p99 = s.p99_ms,
                        mean_batch = s.mean_batch,
                        cold = s.cold_fraction,
                        identity_ok = row.identity_ok,
                        drained = row.drained,
                        live = row.live_events,
                        events = row.events_processed,
                        wall = row.wall_secs,
                        sched = bench::sched_json(&row.sched),
                        digest = row.digest,
                    )
                })
                .collect();
            format!(
                concat!(
                    "    {{\n",
                    "      \"multiplier\": {multiplier},\n",
                    "      \"offered_rps\": {offered:.1},\n",
                    "      \"disciplines\": {{\n",
                    "{disciplines}\n",
                    "      }}\n",
                    "    }}"
                ),
                multiplier = MULTIPLIERS[i],
                offered = args.base_rate * MULTIPLIERS[i],
                disciplines = discipline_objects.join(",\n"),
            )
        })
        .collect();

    let json = format!(
        concat!(
            "{{\n",
            "  \"scenario\": {scenario},\n",
            "  \"base_rate_rps\": {base_rate:.1},\n",
            "  \"multipliers\": [1.0, 2.0, 5.0, 10.0],\n",
            "  \"determinism_checked\": {determinism},\n",
            "  \"loads\": [\n",
            "{loads}\n",
            "  ]\n",
            "}}\n",
        ),
        scenario = bench::scenario_json(&base, args.max_events),
        base_rate = args.base_rate,
        determinism = args.check_determinism,
        loads = load_objects.join(",\n"),
    );
    std::fs::write(&args.out, &json).expect("write results json");
    println!("# wrote {}", args.out);

    if failed {
        std::process::exit(1);
    }
}
