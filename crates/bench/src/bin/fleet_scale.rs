//! Fleet-scale perf scenario: 20 workers × 4 GPUs under Azure-derived load.
//!
//! Unlike the figure binaries, this scenario exists to measure the
//! *simulator* rather than the system it simulates: it drives a cluster an
//! order of magnitude larger than the paper's testbed (80 GPUs, 200 model
//! instances sampled from the Appendix A zoo, an open-loop MAF-like
//! workload) and reports how fast the event loop chews through it —
//! wall-clock events per second — alongside the usual serving metrics
//! (goodput, SLO violation rate) and a peak-RSS proxy. Results are written
//! to `BENCH_fleet.json` at the repo root; CI's `perf-smoke` job replays a
//! fixed-work prefix (`--events 500000`) and fails the build if events/sec
//! regresses more than 30 % below the checked-in baseline
//! (`crates/bench/baseline/BENCH_fleet.json`).
//!
//! The scenario itself is `ScenarioSpec::fleet_scale()`, shared with the
//! `chaos_fleet` and `chaos_compare` harnesses so a chaos run differs from
//! this one only by its fault plan; `Experiment::run` owns the whole
//! build/submit/run loop.
//!
//! The run is deterministic: the telemetry layer folds every response into
//! an order-sensitive FNV-1a digest, and two runs with the same seed must
//! print the same digest (`--expect-digest` turns a mismatch into a non-zero
//! exit for the golden-digest check).
//!
//! Usage:
//! ```text
//! cargo run --release -p bench --bin fleet_scale -- \
//!     [--events N] [--out PATH] [--baseline PATH] [--seed N] \
//!     [--expect-digest HEX] [--tick-profile]
//! ```
//!
//! `--tick-profile` additionally prints the per-full-tick work breakdown
//! (candidates scanned, strategy rebuilds, load-priority recomputes) derived
//! from the scheduler's self-profiling counters.

use clockwork::prelude::*;

/// Maximum tolerated drop of events/sec below the baseline (CI gate).
const REGRESSION_TOLERANCE: f64 = 0.30;

struct Args {
    max_events: u64,
    out: String,
    baseline: Option<String>,
    seed: u64,
    expect_digest: Option<u64>,
    tick_profile: bool,
}

fn parse_args() -> Args {
    let mut args = Args {
        max_events: u64::MAX,
        out: "BENCH_fleet.json".to_string(),
        baseline: None,
        seed: 2020,
        expect_digest: None,
        tick_profile: false,
    };
    let mut it = std::env::args().skip(1);
    while let Some(flag) = it.next() {
        let mut value = |name: &str| {
            it.next()
                .unwrap_or_else(|| panic!("missing value for {name}"))
        };
        match flag.as_str() {
            "--events" => args.max_events = value("--events").parse().expect("--events: integer"),
            "--out" => args.out = value("--out"),
            "--baseline" => args.baseline = Some(value("--baseline")),
            "--seed" => args.seed = value("--seed").parse().expect("--seed: integer"),
            "--expect-digest" => {
                let v = value("--expect-digest");
                let hex = v.trim_start_matches("0x");
                args.expect_digest =
                    Some(u64::from_str_radix(hex, 16).expect("--expect-digest: hex u64"));
            }
            "--tick-profile" => args.tick_profile = true,
            other => panic!("unknown flag {other}"),
        }
    }
    args
}

fn main() {
    let args = parse_args();
    let spec = ScenarioSpec::fleet_scale().with_seed(args.seed);
    let smoke = args.max_events != u64::MAX;
    println!(
        "# fleet-scale scenario: {} workers x {} GPUs, {} models over {}s{}",
        spec.workers,
        spec.gpus_per_worker,
        spec.models,
        spec.duration_secs,
        if smoke {
            format!(" (smoke: first {} events)", args.max_events)
        } else {
            String::new()
        }
    );

    let report =
        Experiment::new(spec.clone()).run_capped(&ClockworkFactory::default(), args.max_events);

    let events = report.events_processed();
    let events_per_sec = report.events_per_sec();
    let wall_secs = report.wall_secs;
    let digest = report.digest();
    let m = report.metrics();
    let slo_violation_rate = 1.0 - m.satisfaction();
    let rss_kb = bench::peak_rss_kb();

    bench::section("fleet_scale results");
    println!(
        "discipline={} submitted={} requests={} goodput={} goodput_rps={:.1} slo_violation_rate={:.4} p50_ms={:.2} p99_ms={:.2}",
        report.discipline,
        report.submitted,
        m.total_requests,
        m.goodput,
        m.goodput_rate(),
        slo_violation_rate,
        m.latency.percentile(50.0).as_millis_f64(),
        m.latency.percentile(99.0).as_millis_f64(),
    );
    println!(
        "events={events} wall_secs={wall_secs:.2} events_per_sec={events_per_sec:.0} peak_rss_kb={rss_kb}"
    );
    println!("digest={digest:016x}");

    // Event-mix breakdown + conservation check: a wake-amplification
    // regression shows up here as worker_wake dominating `delivered`, and a
    // missing cancel shows up as a conservation violation.
    let mix = report.event_mix().clone();
    let live = report.live_events();
    let mix_ok = bench::report_event_mix(&mix, live);
    let events_json = bench::event_mix_json(&mix, live);

    let sched = report.sched_stats();
    bench::section("scheduler self-profiling");
    bench::report_sched_profile(&report.discipline, &sched);
    if args.tick_profile {
        // Per-tick breakdown of where scheduler passes spend their work —
        // the knob for diagnosing a tick-pipeline regression without a
        // profiler attached.
        let full = sched.ticks_full.max(1) as f64;
        println!(
            "per full tick: candidates={:.2} strategy_rebuilds={:.3} load_prio_recomputes={:.3}",
            sched.candidates_scanned as f64 / full,
            sched.strategies_recomputed as f64 / full,
            sched.load_prio_recomputes as f64 / full,
        );
        println!(
            "tick density: {:.3} full ticks per 1k delivered events ({} full / {} delivered)",
            1000.0 * sched.ticks_full as f64 / events.max(1) as f64,
            sched.ticks_full,
            events,
        );
    }

    let json = format!(
        "{{\n  \"scenario\": {{\n    \"workers\": {workers},\n    \"gpus_per_worker\": {gpus},\n    \"models\": {models},\n    \"functions\": {functions},\n    \"duration_secs\": {duration},\n    \"target_rate\": {rate},\n    \"slo_ms\": {slo},\n    \"seed\": {seed},\n    \"smoke\": {smoke},\n    \"max_events\": {max_events}\n  }},\n  \"discipline\": \"{discipline}\",\n  \"serving\": {{\n    \"requests\": {requests},\n    \"goodput\": {goodput},\n    \"goodput_rps\": {goodput_rps:.1},\n    \"slo_violation_rate\": {slo_violation_rate:.6},\n    \"p50_ms\": {p50:.3},\n    \"p99_ms\": {p99:.3},\n    \"cold_start_fraction\": {cold:.6}\n  }},\n  \"perf\": {{\n    \"events_processed\": {events},\n    \"wall_secs\": {wall_secs:.3},\n    \"events_per_sec\": {events_per_sec:.0},\n    \"peak_rss_kb\": {rss_kb}\n  }},\n  \"events\": {events_json},\n  \"sched\": {sched_json},\n  \"digest\": \"{digest:016x}\"\n}}\n",
        workers = spec.workers,
        gpus = spec.gpus_per_worker,
        models = spec.models,
        functions = match spec.workload {
            WorkloadSpec::Azure { functions, .. } => functions,
            _ => 0,
        },
        duration = spec.duration_secs,
        rate = match spec.workload {
            WorkloadSpec::Azure { target_rate, .. } => target_rate,
            _ => 0.0,
        },
        slo = spec.slo_ms,
        seed = args.seed,
        max_events = if smoke { args.max_events } else { 0 },
        discipline = report.discipline,
        requests = m.total_requests,
        goodput = m.goodput,
        goodput_rps = m.goodput_rate(),
        p50 = m.latency.percentile(50.0).as_millis_f64(),
        p99 = m.latency.percentile(99.0).as_millis_f64(),
        cold = m.cold_start_fraction(),
        sched_json = bench::sched_json(&sched),
    );
    std::fs::write(&args.out, &json).expect("write results json");
    println!("# wrote {}", args.out);

    let mut failed = false;
    if !mix_ok {
        // report_event_mix already printed the violation.
        failed = true;
    }
    if let Some(expected) = args.expect_digest {
        if expected != digest {
            eprintln!("DIGEST MISMATCH: expected {expected:016x}, got {digest:016x}");
            failed = true;
        } else {
            println!("# digest matches expected value");
        }
    }
    if let Some(baseline_path) = &args.baseline {
        let baseline = std::fs::read_to_string(baseline_path).expect("read baseline json");
        let base_eps = bench::json_number(&baseline, "events_per_sec")
            .expect("baseline json has no events_per_sec");
        let floor = base_eps * (1.0 - REGRESSION_TOLERANCE);
        println!(
            "# perf gate: {events_per_sec:.0} events/sec vs baseline {base_eps:.0} (floor {floor:.0})"
        );
        if events_per_sec < floor {
            eprintln!(
                "PERF REGRESSION: {events_per_sec:.0} events/sec is more than {:.0}% below baseline {base_eps:.0}",
                REGRESSION_TOLERANCE * 100.0
            );
            failed = true;
        }
    }
    if failed {
        std::process::exit(1);
    }
}
