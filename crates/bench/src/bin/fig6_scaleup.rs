//! Fig. 6 — serving thousands of models from a single worker.
//!
//! A Minor workload (one model at a steady 200 r/s) shares one worker with a
//! Major workload whose active model count grows over time while its total
//! rate stays fixed at 1 000 r/s, spread evenly across active models. As more
//! models activate, batching opportunities vanish, GPU memory fills up, the
//! bottleneck shifts from GPU execution to PCIe weight transfers, and the
//! cold-start fraction climbs towards 100 % — yet the Minor workload keeps
//! its goodput and no request exceeds the 100 ms SLO.
//!
//! Scaled down from the paper (3 600 models / 60 min) to 600 models / 5 min
//! of virtual time so it runs in seconds; the bottleneck shift is preserved.

use clockwork::prelude::*;
use clockwork_sim::time::Timestamp;

fn main() {
    let zoo = ModelZoo::new();
    let slo = Nanos::from_millis(100);
    let minutes = 5u64;
    let major_models_total = 600usize;
    let major_rate = 1000.0;
    let minor_rate = 200.0;
    let duration = Nanos::from_minutes(minutes);

    let mut system = SystemBuilder::new().seed(6).drop_raw_responses().build();
    let minor = system.register_model(zoo.resnet50());
    let major: Vec<ModelId> = system.register_copies(zoo.resnet50(), major_models_total);

    // Minor workload: steady Poisson 200 r/s for the whole run.
    let rng = SimRng::seeded(61);
    let minor_trace =
        OpenLoopClient::new(minor, minor_rate, slo).generate(duration, &mut rng.derive(1));

    // Major workload: one additional model becomes active every
    // `activation_interval`, and the 1 000 r/s is split across active models.
    let activation_interval = duration.as_secs_f64() / major_models_total as f64;
    let mut major_events = Vec::new();
    for (i, &model) in major.iter().enumerate() {
        let activation = i as f64 * activation_interval;
        let mut t = activation;
        let mut mrng = rng.derive(1000 + i as u64);
        while t < duration.as_secs_f64() {
            // Instantaneous per-model rate = total rate / currently active models.
            let active = ((t / activation_interval).floor() as usize + 1).min(major_models_total);
            let rate = major_rate / active as f64;
            let gap = mrng.exponential(1.0 / rate);
            t += gap;
            if t < duration.as_secs_f64() {
                major_events.push(TraceEvent {
                    at: Timestamp::from_nanos((t * 1e9) as u64),
                    model,
                    slo,
                    tier: Tier::Strict,
                });
            }
        }
    }
    let major_trace = Trace::new(major_events);
    let combined = minor_trace.merged(&major_trace);
    println!(
        "# {} requests over {} min ({} major models + 1 minor model)",
        combined.len(),
        minutes,
        major_models_total
    );
    system.submit_trace(&combined);
    system.run_until(Timestamp::ZERO + duration + Nanos::from_secs(2));

    let tel = system.telemetry();
    bench::section("Fig 6: per-minute goodput, latency, cold starts, utilization");
    println!("minute,goodput_rps,throughput_rps,cold_start_rps,mean_batch,p_latency_ms_max");
    for minute in 0..minutes as usize {
        let mut goodput = 0.0;
        let mut throughput = 0.0;
        let mut cold = 0.0;
        let mut batch = 0.0;
        let mut lat_max: f64 = 0.0;
        for s in minute * 60..(minute + 1) * 60 {
            goodput += tel.goodput_series.count_at(s) as f64;
            throughput += tel.throughput_series.count_at(s) as f64;
            cold += tel.cold_start_series.count_at(s) as f64;
            batch += tel.batch_series.mean_at(s);
            lat_max = lat_max.max(tel.latency_series.mean_at(s));
        }
        println!(
            "{minute},{:.1},{:.1},{:.1},{:.2},{:.2}",
            goodput / 60.0,
            throughput / 60.0,
            cold / 60.0,
            batch / 60.0,
            lat_max
        );
    }

    let metrics = tel.metrics();
    bench::section("Fig 6 summary");
    println!(
        "total={} goodput={} satisfaction={:.4} cold_fraction={:.3} max_latency_ms={:.2}",
        metrics.total_requests,
        metrics.goodput,
        metrics.satisfaction(),
        metrics.cold_start_fraction(),
        metrics.latency.max().as_millis_f64()
    );
    let horizon = Timestamp::ZERO + duration;
    for (i, w) in system.workers().iter().enumerate() {
        println!(
            "worker {i}: gpu_util={:.2} pcie_util={:.2}",
            w.gpu_utilization(clockwork_worker::GpuId(0), horizon),
            w.pcie_utilization(clockwork_worker::GpuId(0), horizon)
        );
    }
    println!("# the SLO ceiling should hold: max latency <= 100 ms plus network");
}
