//! Fig. 8 — replaying a Microsoft-Azure-Functions-like trace.
//!
//! The paper replays 8 hours of the MAF trace against 6 workers with 4 026
//! model instances (61 varieties × 66 copies) and a 100 ms SLO, and reports
//! throughput/goodput, latency, batch size, cold models and cold-start
//! throughput over time. Here the trace is synthetic (see DESIGN.md) and
//! scaled to 8 minutes, ~200 model instances and ~800 r/s so it replays in a
//! few minutes of host time on a single core; EXPERIMENTS.md records the
//! scaling.

use std::collections::HashSet;

use clockwork::prelude::*;

fn main() {
    let minutes = 8u64;
    // The whole experiment is one declarative spec: 6 workers, 200 model
    // instances cycling through the zoo varieties (the same heterogeneity as
    // the paper's 61 x 66 instances), an 8-minute Azure-like trace.
    let spec = ScenarioSpec {
        name: "fig8_azure".to_string(),
        workers: 6,
        gpus_per_worker: 1,
        models: 200,
        model_set: ModelSet::ZooCycle,
        workload: WorkloadSpec::Azure {
            functions: 800,
            target_rate: 800.0,
        },
        slo_ms: 100,
        duration_secs: minutes * 60,
        drain_secs: 2,
        seed: 88,
        workload_seed: 8,
        variance: VarianceConfig::none(),
        keep_responses: false,
        faults: FaultPlan::new(),
        ..ScenarioSpec::smoke(88)
    };
    // The generator is rebuilt from the spec's own workload parameters so
    // the function-to-model mapping reported below can never diverge from
    // the workload the experiment actually ran.
    let WorkloadSpec::Azure {
        functions,
        target_rate,
    } = spec.workload
    else {
        unreachable!("fig8 is an Azure-trace experiment");
    };
    let generator = AzureTraceGenerator::new(AzureTraceConfig {
        functions,
        models: spec.models,
        duration: spec.duration(),
        target_rate,
        slo: spec.slo(),
        seed: spec.workload_seed,
    });

    let report = Experiment::new(spec.clone()).run(&ClockworkFactory::default());
    println!(
        "# azure-like trace: {} requests, {} model instances, {} min (discipline: {})",
        report.submitted, spec.models, minutes, report.discipline
    );

    let tel = report.telemetry();
    bench::section("Fig 8 (a)-(e): per-minute series");
    println!("minute,throughput_rps,goodput_rps,mean_batch,cold_start_rps");
    for minute in 0..minutes as usize {
        let mut tp = 0.0;
        let mut gp = 0.0;
        let mut cold = 0.0;
        let mut batch = 0.0;
        for s in minute * 60..(minute + 1) * 60 {
            tp += tel.throughput_series.count_at(s) as f64;
            gp += tel.goodput_series.count_at(s) as f64;
            cold += tel.cold_start_series.count_at(s) as f64;
            batch += tel.batch_series.mean_at(s);
        }
        println!(
            "{minute},{:.1},{:.1},{:.2},{:.1}",
            tp / 60.0,
            gp / 60.0,
            batch / 60.0,
            cold / 60.0
        );
    }

    let m = tel.metrics();
    bench::section("Fig 8 summary");
    println!(
        "requests={} goodput={} satisfaction={:.5} p50_ms={:.2} p99_ms={:.2} max_ms={:.2} cold_fraction={:.3}",
        m.total_requests,
        m.goodput,
        m.satisfaction(),
        m.latency.percentile(50.0).as_millis_f64(),
        m.latency.percentile(99.0).as_millis_f64(),
        m.latency.max().as_millis_f64(),
        m.cold_start_fraction()
    );
    let models_with_cold: HashSet<ModelId> =
        generator.functions().iter().map(|f| f.model).collect();
    println!(
        "# distinct models in workload: {} (cold-start fraction of successes: {:.1}%)",
        models_with_cold.len(),
        m.cold_start_fraction() * 100.0
    );
    println!("# paper shape: goodput tracks throughput, no request exceeds the SLO by more than");
    println!("# the network allowance, cold starts are a small fraction of requests.");
}
