//! The workload-zoo matrix: every zoo scenario under every registered
//! discipline, with tiered graceful degradation gated, not just reported.
//!
//! The zoo (`ScenarioSpec::zoo()`) spans the diversity the single
//! fleet-scale trace cannot: a diurnal load cycle, a 10× flash crowd on a
//! tiered client population, Zipf model popularity with a drifting hot set,
//! an even multi-tenant SLO split, and elastic autoscale under churn
//! (workers joining mid-run while others crash). Each cell runs through the
//! same declarative `Experiment` path as every other harness, so the
//! universal invariants (`bench::invariants`) apply unchanged.
//!
//! Two gates fold into the exit status:
//!
//! - Every cell must pass accounting, over-delivery, goodput-honesty and
//!   event-conservation checks (plus digest stability under
//!   `--check-determinism`).
//! - **Tier retention**: on the tiered overload scenario (`flash_crowd`)
//!   the Clockwork discipline must retain at least as much strict-tier
//!   traffic as best-effort traffic — graceful degradation means the shed
//!   order is honored, strict before best-effort never.
//!
//! Results go to `BENCH_scenarios.json` (see `crates/bench/README.md` for
//! the schema): one object per scenario × discipline with totals and the
//! per-tier outcome breakdown.
//!
//! Usage:
//! ```text
//! cargo run --release -p bench --bin scenario_matrix -- \
//!     [--duration-secs N] [--seed N] [--out PATH] [--check-determinism]
//! ```

use clockwork::prelude::*;
use clockwork_baselines::register_baselines;

struct Args {
    duration_secs: Option<u64>,
    seed: Option<u64>,
    out: String,
    check_determinism: bool,
}

fn parse_args() -> Args {
    let mut args = Args {
        duration_secs: None,
        seed: None,
        out: "BENCH_scenarios.json".to_string(),
        check_determinism: false,
    };
    let mut it = std::env::args().skip(1);
    while let Some(flag) = it.next() {
        let mut value = |name: &str| {
            it.next()
                .unwrap_or_else(|| panic!("missing value for {name}"))
        };
        match flag.as_str() {
            "--duration-secs" => {
                args.duration_secs = Some(
                    value("--duration-secs")
                        .parse()
                        .expect("--duration-secs: integer"),
                )
            }
            "--seed" => args.seed = Some(value("--seed").parse().expect("--seed: integer")),
            "--out" => args.out = value("--out"),
            "--check-determinism" => args.check_determinism = true,
            other => panic!("unknown flag {other}"),
        }
    }
    args
}

/// The zoo presets with the CLI overrides applied. Fault plans that scale
/// with duration are regenerated after the override, mirroring how
/// `chaos_fleet` rescales its scripted churn.
fn scenarios(args: &Args) -> Vec<ScenarioSpec> {
    ScenarioSpec::zoo()
        .into_iter()
        .map(|mut spec| {
            if let Some(secs) = args.duration_secs {
                let rescale_churn = !spec.faults.is_empty();
                spec = spec.with_duration_secs(secs);
                if rescale_churn {
                    spec.faults = spec.zoo_faults();
                }
            }
            if let Some(seed) = args.seed {
                spec = spec.with_seed(seed);
            }
            spec
        })
        .collect()
}

/// Everything one (scenario, discipline) cell contributes, extracted so the
/// run's `ServingSystem` drops before the next cell runs.
struct MatrixCell {
    discipline: String,
    total: u64,
    successes: u64,
    rejected: u64,
    goodput: u64,
    satisfaction: f64,
    tiers: [TierOutcomes; Tier::COUNT],
    drained: bool,
    wall_secs: f64,
    digest: u64,
}

impl MatrixCell {
    fn summarize(report: &RunReport) -> Self {
        let m = report.metrics();
        MatrixCell {
            discipline: report.discipline.clone(),
            total: m.total_requests,
            successes: m.successes,
            rejected: report.rejected(),
            goodput: m.goodput,
            satisfaction: m.satisfaction(),
            tiers: m.tiers,
            drained: report.drained(),
            wall_secs: report.wall_secs,
            digest: report.digest(),
        }
    }

    fn strict(&self) -> &TierOutcomes {
        &self.tiers[Tier::Strict.index()]
    }

    fn best_effort(&self) -> &TierOutcomes {
        &self.tiers[Tier::BestEffort.index()]
    }
}

fn tier_json(t: &TierOutcomes) -> String {
    format!(
        "{{ \"submitted\": {}, \"successes\": {}, \"goodput\": {}, \"rejected\": {}, \"shed\": {}, \"retention\": {:.4} }}",
        t.submitted,
        t.successes,
        t.goodput,
        t.rejected,
        t.shed,
        t.retention(),
    )
}

fn cell_json(cell: &MatrixCell) -> String {
    format!(
        concat!(
            "      \"{name}\": {{\n",
            "        \"total\": {total},\n",
            "        \"successes\": {successes},\n",
            "        \"rejected\": {rejected},\n",
            "        \"goodput\": {goodput},\n",
            "        \"satisfaction\": {satisfaction:.4},\n",
            "        \"drained\": {drained},\n",
            "        \"wall_secs\": {wall:.3},\n",
            "        \"tiers\": {{\n",
            "          \"strict\": {strict},\n",
            "          \"best_effort\": {best_effort}\n",
            "        }},\n",
            "        \"digest\": \"{digest:016x}\"\n",
            "      }}"
        ),
        name = cell.discipline,
        total = cell.total,
        successes = cell.successes,
        rejected = cell.rejected,
        goodput = cell.goodput,
        satisfaction = cell.satisfaction,
        drained = cell.drained,
        wall = cell.wall_secs,
        strict = tier_json(cell.strict()),
        best_effort = tier_json(cell.best_effort()),
        digest = cell.digest,
    )
}

fn main() {
    let args = parse_args();
    let scenarios = scenarios(&args);

    let mut registry = SchedulerRegistry::builtin();
    registry.register(Box::new(ClockworkNoBatchFactory::default()));
    register_baselines(&mut registry);

    println!(
        "# scenario-matrix: {} disciplines ({}) x {} zoo scenarios ({}){}",
        registry.len(),
        registry.names().join(", "),
        scenarios.len(),
        scenarios
            .iter()
            .map(|s| s.name.as_str())
            .collect::<Vec<_>>()
            .join(", "),
        if args.check_determinism {
            ", determinism checked"
        } else {
            ""
        },
    );

    let mut failed = false;
    let mut scenario_objects: Vec<String> = Vec::new();
    for spec in &scenarios {
        let experiment = Experiment::new(spec.clone());
        bench::section(&format!("{}: per-discipline outcomes", spec.name));
        println!(
            "{:<18} {:>8} {:>8} {:>9} {:>6} {:>10} {:>10} {:>8}",
            "discipline", "total", "goodput", "rejected", "shed", "ret_strict", "ret_be", "sat"
        );
        let mut cells: Vec<MatrixCell> = Vec::new();
        for factory in registry.iter() {
            let label = format!("{}/{}", spec.name, factory.name());
            let report = experiment.run(factory);
            if !bench::invariants::check_run(&label, &report, spec) {
                failed = true;
            }
            if args.check_determinism {
                let rerun = experiment.run(factory);
                if !bench::invariants::check_determinism(&label, &report, &rerun) {
                    failed = true;
                }
            }
            let cell = MatrixCell::summarize(&report);
            println!(
                "{:<18} {:>8} {:>8} {:>9} {:>6} {:>10.4} {:>10.4} {:>8.4}",
                cell.discipline,
                cell.total,
                cell.goodput,
                cell.rejected,
                cell.best_effort().shed,
                cell.strict().retention(),
                cell.best_effort().retention(),
                cell.satisfaction,
            );
            cells.push(cell);
        }

        // The graceful-degradation gate: on the tiered overload scenario the
        // Clockwork discipline must keep strict-tier retention at or above
        // best-effort retention — shedding order honored under pressure.
        if spec.name == "flash_crowd" {
            if let Some(cell) = cells.iter().find(|c| c.discipline == "clockwork") {
                let strict = cell.strict().retention();
                let best_effort = cell.best_effort().retention();
                println!(
                    "# tier gate (clockwork): strict {strict:.4} >= best_effort {best_effort:.4}"
                );
                if strict < best_effort {
                    eprintln!(
                        "[{}/clockwork] TIER RETENTION VIOLATION: strict {strict:.4} < best-effort {best_effort:.4}",
                        spec.name
                    );
                    failed = true;
                }
                if cell.best_effort().shed == 0 && cell.best_effort().submitted > 0 {
                    eprintln!(
                        "[{}/clockwork] DEGRADATION INERT: a 10x flash crowd shed no best-effort traffic",
                        spec.name
                    );
                    failed = true;
                }
            }
        }

        let discipline_objects: Vec<String> = cells.iter().map(cell_json).collect();
        scenario_objects.push(format!(
            "    \"{name}\": {{\n      \"scenario\": {scenario},\n      \"disciplines\": {{\n{cells}\n      }}\n    }}",
            name = spec.name,
            scenario = bench::scenario_json(spec, u64::MAX),
            cells = discipline_objects.join(",\n"),
        ));
    }

    let json = format!(
        "{{\n  \"scenarios\": {{\n{}\n  }}\n}}\n",
        scenario_objects.join(",\n"),
    );
    std::fs::write(&args.out, &json).expect("write results json");
    println!("# wrote {}", args.out);

    if failed {
        std::process::exit(1);
    }
}
