//! The shard sweep: the same fleet-scale workload under 1, 2, 4 and 8
//! controller shards — the repo's first parallel-speedup curve.
//!
//! The scenario is [`ShardedSpec::shard_fleet`]: 200 workers × 4 GPUs,
//! 2 000 zoo models, the Azure-derived trace at 15 000 r/s — an order of
//! magnitude past the fleet-scale baseline, the population a single
//! controller simulation struggles with. The sweep holds the *total* fleet
//! and workload fixed and varies only the shard count, so every row answers
//! the same question: what does splitting the controller buy?
//!
//! Two effects contribute to the curve:
//!
//! - **Parallelism**: each shard simulates on its own `std::thread`, so
//!   with cores to spare the fleet's wall clock is the slowest shard, not
//!   the sum (`max_shard_wall` vs `sum_shard_wall` in the output).
//! - **Smaller controllers**: per-event work scales with controller state
//!   (event-queue depth, scheduler indexes), so even single-core hosts see
//!   `sum_shard_wall` shrink as shards get smaller.
//!
//! Every row is gated, not just reported: per-shard event conservation,
//! no over-delivery, the global exactly-once identity on drained runs, and
//! (under `--check-determinism`) a byte-identical fleet digest on rerun.
//! Any violation exits non-zero. The 1-shard row additionally pins the
//! sharded runner to the unsharded oracle by construction (see the
//! `shard_equivalence` tests).
//!
//! Results go to `BENCH_shard.json` (schema in `crates/bench/README.md`).
//!
//! Usage:
//! ```text
//! cargo run --release -p bench --bin shard_sweep -- \
//!     [--shards 1,2,4,8] [--duration-secs N] [--seed N] \
//!     [--router hash|load] [--out PATH] [--check-determinism]
//! ```

use clockwork::prelude::*;
use clockwork_shard::{FleetReport, ShardAssignment, ShardedExperiment, ShardedSpec};

struct Args {
    shards: Vec<u32>,
    duration_secs: Option<u64>,
    seed: Option<u64>,
    router: ShardAssignment,
    out: String,
    check_determinism: bool,
}

fn parse_args() -> Args {
    let mut args = Args {
        shards: vec![1, 2, 4, 8],
        duration_secs: None,
        seed: None,
        router: ShardAssignment::HashByModel,
        out: "BENCH_shard.json".to_string(),
        check_determinism: false,
    };
    let mut it = std::env::args().skip(1);
    while let Some(flag) = it.next() {
        let mut value = |name: &str| {
            it.next()
                .unwrap_or_else(|| panic!("missing value for {name}"))
        };
        match flag.as_str() {
            "--shards" => {
                args.shards = value("--shards")
                    .split(',')
                    .map(|s| {
                        s.trim()
                            .parse()
                            .expect("--shards: comma-separated integers")
                    })
                    .collect();
                assert!(!args.shards.is_empty(), "--shards: need at least one count");
            }
            "--duration-secs" => {
                args.duration_secs = Some(
                    value("--duration-secs")
                        .parse()
                        .expect("--duration-secs: integer"),
                )
            }
            "--seed" => args.seed = Some(value("--seed").parse().expect("--seed: integer")),
            "--router" => {
                args.router = match value("--router").as_str() {
                    "hash" => ShardAssignment::HashByModel,
                    "load" => ShardAssignment::LoadAware,
                    other => panic!("--router: expected hash or load, got {other}"),
                }
            }
            "--out" => args.out = value("--out"),
            "--check-determinism" => args.check_determinism = true,
            other => panic!("unknown flag {other}"),
        }
    }
    args
}

fn sharded_spec(args: &Args, shards: u32) -> ShardedSpec {
    let mut spec = ShardedSpec::shard_fleet(shards);
    spec.assignment = args.router.clone();
    if let Some(secs) = args.duration_secs {
        spec.base = spec.base.clone().with_duration_secs(secs);
    }
    if let Some(seed) = args.seed {
        spec.base = spec.base.clone().with_seed(seed);
    }
    spec
}

/// Gates one fleet run on the universal invariants; prints loudly and
/// returns `false` on any violation.
fn check_fleet(label: &str, fleet: &FleetReport) -> bool {
    let mut ok = true;
    if fleet.overdelivered() {
        eprintln!(
            "[{label}] OVERDELIVERY: {} successes + {} rejected > {} total",
            fleet.successes(),
            fleet.rejected(),
            fleet.total_requests()
        );
        ok = false;
    }
    if fleet.drained() && !fleet.identity_ok() {
        eprintln!(
            "[{label}] ACCOUNTING VIOLATION: {} successes + {} rejected != {} total",
            fleet.successes(),
            fleet.rejected(),
            fleet.total_requests()
        );
        ok = false;
    }
    if fleet.submitted() != fleet.total_requests() {
        eprintln!(
            "[{label}] FRONT DOOR LOSS: routed {} but controllers saw {}",
            fleet.submitted(),
            fleet.total_requests()
        );
        ok = false;
    }
    for shard in &fleet.shards {
        if !shard.mix_conserved() {
            eprintln!(
                "[{label}] EVENT ACCOUNTING VIOLATION on shard {}: pushed {} != delivered {} + cancelled {} + live {}",
                shard.shard,
                shard.mix.pushed(),
                shard.mix.delivered(),
                shard.mix.cancelled(),
                shard.live_events
            );
            ok = false;
        }
    }
    ok
}

fn shard_json(fleet: &FleetReport) -> String {
    let rows: Vec<String> = fleet
        .shards
        .iter()
        .map(|s| {
            format!(
                "        {{ \"shard\": {}, \"workers\": {}, \"models\": {}, \"submitted\": {}, \"successes\": {}, \"rejected\": {}, \"goodput\": {}, \"events\": {}, \"wall_secs\": {:.3}, \"digest\": \"{:016x}\" }}",
                s.shard,
                s.workers,
                s.models,
                s.submitted,
                s.metrics.successes,
                s.rejected(),
                s.metrics.goodput,
                s.events_processed,
                s.wall_secs,
                s.digest,
            )
        })
        .collect();
    rows.join(",\n")
}

fn main() {
    let args = parse_args();
    let factory = ClockworkFactory::default();
    let base = sharded_spec(&args, 1).base;
    println!(
        "# shard-sweep: {} over shard counts {:?} ({} workers x {} GPUs, {} models{})",
        base.name,
        args.shards,
        base.workers,
        base.gpus_per_worker,
        base.models,
        if args.check_determinism {
            ", determinism checked"
        } else {
            ""
        },
    );

    let mut failed = false;
    let mut rows: Vec<String> = Vec::new();
    let mut baseline_wall: Option<f64> = None;
    bench::section("shard sweep");
    println!(
        "{:>6} {:>10} {:>8} {:>12} {:>12} {:>9} {:>9} {:>9} {:>8} {:>18}",
        "shards",
        "wall_s",
        "speedup",
        "max_shard_s",
        "sum_shard_s",
        "total",
        "goodput",
        "rejected",
        "evps",
        "fleet_digest"
    );
    for &shards in &args.shards {
        let label = format!("shard_sweep/{shards}");
        let experiment = ShardedExperiment::new(sharded_spec(&args, shards));
        let fleet = experiment.run(&factory);
        if !check_fleet(&label, &fleet) {
            failed = true;
        }
        if args.check_determinism {
            let rerun = experiment.run(&factory);
            if rerun.fleet_digest() != fleet.fleet_digest() {
                eprintln!(
                    "[{label}] DETERMINISM VIOLATION: fleet digest {:016x} != {:016x} on rerun",
                    fleet.fleet_digest(),
                    rerun.fleet_digest()
                );
                failed = true;
            }
        }
        let baseline = *baseline_wall.get_or_insert(fleet.wall_secs);
        let speedup = if fleet.wall_secs > 0.0 {
            baseline / fleet.wall_secs
        } else {
            0.0
        };
        let evps = if fleet.wall_secs > 0.0 {
            fleet.events_processed() as f64 / fleet.wall_secs
        } else {
            0.0
        };
        println!(
            "{:>6} {:>10.3} {:>8.2} {:>12.3} {:>12.3} {:>9} {:>9} {:>9} {:>8.0} {:>18}",
            shards,
            fleet.wall_secs,
            speedup,
            fleet.max_shard_wall(),
            fleet.sum_shard_wall(),
            fleet.total_requests(),
            fleet.goodput(),
            fleet.rejected(),
            evps,
            format!("{:016x}", fleet.fleet_digest()),
        );
        rows.push(format!(
            concat!(
                "    {{\n",
                "      \"shards\": {shards},\n",
                "      \"wall_secs\": {wall:.3},\n",
                "      \"speedup\": {speedup:.3},\n",
                "      \"max_shard_wall_secs\": {max_wall:.3},\n",
                "      \"sum_shard_wall_secs\": {sum_wall:.3},\n",
                "      \"events\": {events},\n",
                "      \"events_per_sec\": {evps:.0},\n",
                "      \"total\": {total},\n",
                "      \"successes\": {successes},\n",
                "      \"rejected\": {rejected},\n",
                "      \"goodput\": {goodput},\n",
                "      \"drained\": {drained},\n",
                "      \"fleet_digest\": \"{digest:016x}\",\n",
                "      \"per_shard\": [\n{per_shard}\n      ]\n",
                "    }}"
            ),
            shards = shards,
            wall = fleet.wall_secs,
            speedup = speedup,
            max_wall = fleet.max_shard_wall(),
            sum_wall = fleet.sum_shard_wall(),
            events = fleet.events_processed(),
            evps = evps,
            total = fleet.total_requests(),
            successes = fleet.successes(),
            rejected = fleet.rejected(),
            goodput = fleet.goodput(),
            drained = fleet.drained(),
            digest = fleet.fleet_digest(),
            per_shard = shard_json(&fleet),
        ));
    }

    let router = match args.router {
        ShardAssignment::HashByModel => "hash",
        ShardAssignment::LoadAware => "load",
        ShardAssignment::Explicit(_) => "explicit",
    };
    let json = format!(
        "{{\n  \"scenario\": {scenario},\n  \"router\": \"{router}\",\n  \"sweep\": [\n{rows}\n  ]\n}}\n",
        scenario = bench::scenario_json(&base, u64::MAX),
        rows = rows.join(",\n"),
    );
    std::fs::write(&args.out, &json).expect("write results json");
    println!("# wrote {}", args.out);

    if failed {
        std::process::exit(1);
    }
}
