//! The comparison figure the chaos work was building towards: every
//! registered discipline under the *same* chaos scenario.
//!
//! One declarative `ScenarioSpec` — the fleet-scale cluster overlaid with
//! the scripted churn schedule (two worker crashes, four GPU failures, a
//! partition window, a degraded link) — is run through `Experiment::run`
//! once per discipline in the registry: Clockwork, the FIFO strawman, the
//! Clipper-like baseline and the INFaaS-like baseline. Because the scenario,
//! the seed and the fault plan are byte-identical across runs, differences
//! in the rows are *pure policy*: how much goodput each discipline retains
//! while capacity is gone, how deep its availability-weighted goodput dips,
//! and how quickly it returns to tracking offered load after the last
//! repair.
//!
//! Per-discipline invariants are enforced, not just reported: exactly-once
//! accounting (`successes + rejected == total`), no goodput entry past its
//! SLO, and the event-mix conservation identity
//! (`pushed == delivered + cancelled + live`). Any violation exits non-zero,
//! which is what CI's smoke step relies on.
//!
//! Results go to `BENCH_chaos_compare.json`: one object per discipline with
//! goodput, phase satisfaction, availability floor and recovery time (see
//! `crates/bench/README.md` for the schema).
//!
//! Usage:
//! ```text
//! cargo run --release -p bench --bin chaos_compare -- \
//!     [--duration-secs N] [--events N] [--out PATH] [--seed N] \
//!     [--max-clockwork-ratio X]
//! ```
//!
//! `--max-clockwork-ratio X` turns the run into a perf gate: it exits
//! non-zero when clockwork's wall time exceeds `X` times clipper's on the
//! same scenario (0 disables; the default). CI's smoke step uses this to
//! catch tick-pipeline regressions that an absolute wall cap would miss on
//! slower runners.

use clockwork::prelude::*;
use clockwork_baselines::register_baselines;

struct Args {
    max_events: u64,
    out: String,
    seed: u64,
    duration_secs: u64,
    max_clockwork_ratio: f64,
}

fn parse_args() -> Args {
    let mut args = Args {
        max_events: u64::MAX,
        out: "BENCH_chaos_compare.json".to_string(),
        seed: 2020,
        duration_secs: 120,
        max_clockwork_ratio: 0.0,
    };
    let mut it = std::env::args().skip(1);
    while let Some(flag) = it.next() {
        let mut value = |name: &str| {
            it.next()
                .unwrap_or_else(|| panic!("missing value for {name}"))
        };
        match flag.as_str() {
            "--events" => args.max_events = value("--events").parse().expect("--events: integer"),
            "--out" => args.out = value("--out"),
            "--seed" => args.seed = value("--seed").parse().expect("--seed: integer"),
            "--duration-secs" => {
                args.duration_secs = value("--duration-secs")
                    .parse()
                    .expect("--duration-secs: integer")
            }
            // Perf gate: fail if clockwork's wall time exceeds this multiple
            // of clipper's (0 disables). Clipper is the natural yardstick —
            // same per-request work, no strategy/load planning — so the ratio
            // is robust to runner speed where an absolute wall cap is not.
            "--max-clockwork-ratio" => {
                args.max_clockwork_ratio = value("--max-clockwork-ratio")
                    .parse()
                    .expect("--max-clockwork-ratio: float")
            }
            other => panic!("unknown flag {other}"),
        }
    }
    args
}

/// Everything the table and JSON need from one discipline's run, extracted
/// so the run's full `ServingSystem` can be dropped before the next one.
struct DisciplineRow {
    discipline: String,
    total: u64,
    successes: u64,
    rejected: u64,
    goodput: u64,
    goodput_rps: f64,
    identity_ok: bool,
    drained: bool,
    live_events: u64,
    events_processed: u64,
    wall_secs: f64,
    digest: u64,
    sched: SchedProfile,
    analysis: bench::ChaosAnalysis,
}

impl DisciplineRow {
    fn summarize(report: &RunReport, spec: &ScenarioSpec) -> Self {
        let m = report.metrics();
        DisciplineRow {
            discipline: report.discipline.clone(),
            total: m.total_requests,
            successes: m.successes,
            rejected: report.rejected(),
            goodput: m.goodput,
            goodput_rps: m.goodput_rate(),
            identity_ok: report.identity_ok(),
            drained: report.drained(),
            live_events: report.live_events(),
            events_processed: report.events_processed(),
            wall_secs: report.wall_secs,
            digest: report.digest(),
            sched: report.sched_stats(),
            analysis: bench::analyze_chaos(report, spec),
        }
    }
}

fn main() {
    let args = parse_args();
    let mut spec = ScenarioSpec::fleet_scale()
        .named("chaos_compare")
        .with_seed(args.seed)
        .with_duration_secs(args.duration_secs);
    spec.faults = spec.scripted_churn();
    let plan = spec.faults.clone();

    let mut registry = SchedulerRegistry::builtin();
    register_baselines(&mut registry);

    println!(
        "# chaos-compare: {} disciplines ({}) x one scenario ({} workers x {} GPUs, {} models, {}s, {} churn events)",
        registry.len(),
        registry.names().join(", "),
        spec.workers,
        spec.gpus_per_worker,
        spec.models,
        spec.duration_secs,
        plan.len(),
    );

    let experiment = Experiment::new(spec.clone());
    let mut failed = false;
    // Each run's full ServingSystem (80 GPUs of telemetry and scheduler
    // state) is summarized and dropped before the next discipline runs, so
    // peak memory holds one system, not four.
    let mut rows: Vec<DisciplineRow> = Vec::new();
    for factory in registry.iter() {
        let label = factory.name();
        println!("# running {label}...");
        let report = experiment.run_capped(factory, args.max_events);
        if !bench::invariants::check_run(label, &report, &spec) {
            failed = true;
        }
        rows.push(DisciplineRow::summarize(&report, &spec));
    }

    bench::section("chaos_compare results (same scenario, same seed, same churn)");
    println!(
        "{:<10} {:>9} {:>9} {:>9} {:>8} {:>8} {:>8} {:>9} {:>10} {:>9} {:>8}",
        "discipline",
        "total",
        "goodput",
        "rejected",
        "sat_pre",
        "sat_churn",
        "sat_post",
        "retention",
        "avail_min",
        "recov_s",
        "backlog"
    );
    for row in &rows {
        let analysis = &row.analysis;
        // "backlog" = requests still unanswered when the horizon cut the
        // run off — nonzero for best-effort disciplines in collapse, whose
        // queues outlive the trace.
        println!(
            "{:<10} {:>9} {:>9} {:>9} {:>8.4} {:>8.4} {:>8.4} {:>8.1}% {:>10.4} {:>9.1} {:>8}",
            row.discipline,
            row.total,
            row.goodput,
            row.rejected,
            analysis.pre.satisfaction(),
            analysis.churn.satisfaction(),
            analysis.post.satisfaction(),
            100.0 * analysis.retention(),
            analysis.min_availability,
            analysis.recovery_secs,
            row.total
                .saturating_sub(row.successes)
                .saturating_sub(row.rejected),
        );
    }

    bench::section("scheduler self-profiling (ticks that did work vs early-outs)");
    for row in &rows {
        bench::report_sched_profile(&row.discipline, &row.sched);
    }

    if args.max_clockwork_ratio > 0.0 {
        let wall_of = |name: &str| {
            rows.iter()
                .find(|r| r.discipline == name)
                .map(|r| r.wall_secs)
        };
        if let (Some(clockwork), Some(clipper)) = (wall_of("clockwork"), wall_of("clipper")) {
            let ratio = clockwork / clipper.max(1e-9);
            println!(
                "# perf gate: clockwork {clockwork:.3}s / clipper {clipper:.3}s = {ratio:.2}x (max {:.2}x)",
                args.max_clockwork_ratio
            );
            if ratio > args.max_clockwork_ratio {
                eprintln!(
                    "PERF GATE VIOLATION: clockwork wall is {ratio:.2}x clipper's, above the {:.2}x cap",
                    args.max_clockwork_ratio
                );
                failed = true;
            }
        }
    }

    let discipline_objects: Vec<String> = rows
        .iter()
        .map(|row| {
            let analysis = &row.analysis;
            format!(
                concat!(
                    "    \"{name}\": {{\n",
                    "      \"total\": {total},\n",
                    "      \"successes\": {successes},\n",
                    "      \"rejected\": {rejected},\n",
                    "      \"goodput\": {goodput},\n",
                    "      \"goodput_rps\": {goodput_rps:.1},\n",
                    "      \"satisfaction\": {{ \"pre\": {pre:.4}, \"churn\": {churn:.4}, \"post\": {post:.4}, \"retention\": {retention:.4} }},\n",
                    "      \"availability\": {{ \"min\": {avail_min:.4}, \"final\": {avail_final:.4} }},\n",
                    "      \"recovery_secs\": {recovery:.1},\n",
                    "      \"identity_ok\": {identity_ok},\n",
                    "      \"drained\": {drained},\n",
                    "      \"live_events\": {live},\n",
                    "      \"events_processed\": {events},\n",
                    "      \"wall_secs\": {wall:.3},\n",
                    "      \"sched\": {sched},\n",
                    "      \"digest\": \"{digest:016x}\"\n",
                    "    }}"
                ),
                name = row.discipline,
                total = row.total,
                successes = row.successes,
                rejected = row.rejected,
                goodput = row.goodput,
                goodput_rps = row.goodput_rps,
                pre = analysis.pre.satisfaction(),
                churn = analysis.churn.satisfaction(),
                post = analysis.post.satisfaction(),
                retention = analysis.retention(),
                avail_min = analysis.min_availability,
                avail_final = analysis.final_availability,
                recovery = analysis.recovery_secs,
                identity_ok = row.identity_ok,
                drained = row.drained,
                live = row.live_events,
                events = row.events_processed,
                wall = row.wall_secs,
                sched = bench::sched_json(&row.sched),
                digest = row.digest,
            )
        })
        .collect();

    let json = format!(
        concat!(
            "{{\n",
            "  \"scenario\": {scenario},\n",
            "  \"churn\": {{\n",
            "    \"worker_crashes\": {crashes},\n",
            "    \"gpu_failures\": {gpu_failures},\n",
            "    \"partitions\": {partitions},\n",
            "    \"link_degradations\": {degradations},\n",
            "    \"first_fault_secs\": {first_fault:.3},\n",
            "    \"last_recovery_secs\": {last_recovery:.3}\n",
            "  }},\n",
            "  \"steady_fraction_of_arrivals\": {steady:.2},\n",
            "  \"disciplines\": {{\n",
            "{disciplines}\n",
            "  }}\n",
            "}}\n",
        ),
        scenario = bench::scenario_json(&spec, args.max_events),
        crashes = plan.worker_crashes(),
        gpu_failures = plan.gpu_failures(),
        partitions = plan.partitions(),
        degradations = plan.link_degradations(),
        first_fault = plan
            .first_at()
            .map(|t| t.as_nanos() as f64 / 1e9)
            .unwrap_or(0.0),
        last_recovery = plan
            .last_recovery_at()
            .map(|t| t.as_nanos() as f64 / 1e9)
            .unwrap_or(0.0),
        steady = bench::STEADY_FRACTION,
        disciplines = discipline_objects.join(",\n"),
    );
    std::fs::write(&args.out, &json).expect("write results json");
    println!("# wrote {}", args.out);

    if failed {
        std::process::exit(1);
    }
}
