//! The universal invariants every run must keep, in one place.
//!
//! Every discipline × scenario combination — the chaos comparison, the batch
//! sweep, the trace-blame matrix, the scenario matrix and the chaos-fuzz
//! harness — is held to the same discipline-independent checks:
//!
//! - **Exactly-once accounting** (drained runs): `successes + rejected ==
//!   total`. A discipline that drops a request on the floor, or answers one
//!   twice, fails here.
//! - **No over-delivery** (all runs, even interrupted ones): `successes +
//!   rejected <= total`.
//! - **Goodput honesty**: nothing counted as goodput took longer than the
//!   SLO.
//! - **Event conservation**: `pushed == delivered + cancelled + live` over
//!   the simulation event queue.
//! - **Determinism**: the same spec under the same discipline yields the
//!   same order-sensitive response digest, twice.
//!
//! Each check prints a loud `VIOLATION` line to stderr and returns `false`
//! on failure; the binaries fold the result into their exit status so CI
//! fails on any violation, and the proptest fuzz harness asserts on the same
//! functions verbatim.

use clockwork::prelude::*;

/// Exactly-once accounting, over-delivery and goodput-honesty checks.
///
/// The accounting identity is only enforced on drained runs: an event-capped
/// run legitimately leaves requests unanswered (but must never answer one
/// twice, which the over-delivery check catches regardless).
pub fn check_accounting(label: &str, report: &RunReport, spec: &ScenarioSpec) -> bool {
    let m = report.metrics();
    let rejected = report.rejected();
    let mut ok = true;
    if report.drained() && !report.identity_ok() {
        eprintln!(
            "[{label}] ACCOUNTING VIOLATION: successes {} + rejected {} != total {}",
            m.successes, rejected, m.total_requests
        );
        ok = false;
    }
    if report.overdelivered() {
        eprintln!(
            "[{label}] DUPLICATE RESPONSES: successes {} + rejected {} > total {}",
            m.successes, rejected, m.total_requests
        );
        ok = false;
    }
    // Goodput only counts on-time responses. Tiered workloads carry
    // per-request SLOs at or above the scenario's strict SLO, so the
    // scenario-wide bound only applies when every request uses it.
    let slo_bound = match spec.workload {
        WorkloadSpec::Shaped { tiers, .. } if tiers.is_tiered() => {
            spec.slo().max(Nanos::from_millis(tiers.best_effort_slo_ms))
        }
        _ => spec.slo(),
    };
    if m.goodput > 0 && m.goodput_latency.max() > slo_bound {
        eprintln!(
            "[{label}] GOODPUT VIOLATION: a response counted as goodput took {} > SLO bound {}",
            m.goodput_latency.max(),
            slo_bound
        );
        ok = false;
    }
    ok
}

/// The event-queue conservation identity
/// `pushed == delivered + cancelled + live`.
pub fn check_event_mix(label: &str, report: &RunReport) -> bool {
    if report.mix_conserved() {
        return true;
    }
    let mix = report.event_mix();
    eprintln!(
        "[{label}] EVENT ACCOUNTING VIOLATION: pushed {} != delivered {} + cancelled {} + live {}",
        mix.pushed(),
        mix.delivered(),
        mix.cancelled(),
        report.live_events()
    );
    false
}

/// Digest-stability across two same-seed runs of the same spec.
pub fn check_determinism(label: &str, first: &RunReport, rerun: &RunReport) -> bool {
    if first.digest() == rerun.digest() {
        return true;
    }
    eprintln!(
        "[{label}] DETERMINISM VIOLATION: digest {:016x} != rerun {:016x}",
        first.digest(),
        rerun.digest()
    );
    false
}

/// All single-run invariants at once: accounting, over-delivery, goodput
/// honesty and event conservation.
pub fn check_run(label: &str, report: &RunReport, spec: &ScenarioSpec) -> bool {
    // Evaluate both so every violation prints, not just the first.
    let accounting = check_accounting(label, report, spec);
    let mix = check_event_mix(label, report);
    accounting && mix
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn clean_runs_pass_every_check() {
        let spec = ScenarioSpec {
            workers: 2,
            gpus_per_worker: 1,
            models: 4,
            duration_secs: 2,
            ..ScenarioSpec::smoke(23)
        };
        let experiment = Experiment::new(spec.clone());
        let a = experiment.run(&ClockworkFactory::default());
        let b = experiment.run(&ClockworkFactory::default());
        assert!(check_run("a", &a, &spec));
        assert!(check_determinism("a", &a, &b));
    }

    #[test]
    fn tiered_specs_bound_goodput_by_the_loosest_slo() {
        let spec = ScenarioSpec::flash_crowd()
            .with_duration_secs(5)
            .with_seed(3);
        let report = Experiment::new(spec.clone()).run(&ClockworkFactory::default());
        assert!(check_run("flash", &report, &spec));
    }
}
