//! Baseline serving disciplines (§6.1, §8).
//!
//! The paper compares Clockwork against Clipper (NSDI '17) and INFaaS
//! (arXiv '19). Both are *reactive*, best-effort systems layered on top of
//! opaque model-execution frameworks: they treat the latency SLO as a
//! long-term target to steer towards (adaptive batching, model-variant
//! selection, autoscaling) rather than a per-request guarantee, they do not
//! control worker memory or execution order, and they happily run kernels
//! concurrently on the GPU.
//!
//! These reimplementations capture those disciplines on the same simulated
//! substrate as Clockwork, so the Fig. 5 comparison isolates the
//! architectural difference (reactive/best-effort vs. proactive/consolidated)
//! rather than implementation details:
//!
//! * [`clipper::ClipperScheduler`] — per-model queues with adaptive batching
//!   driven by an SLO feedback loop, models pinned to workers, loads on
//!   demand, no admission control, unbounded action windows.
//! * [`infaas::InfaasScheduler`] — model-variant (batch-size) selection per
//!   request plus reactive replication to more GPUs when a model's queue
//!   grows, again without admission control or execution windows.
//!
//! Both implement the same [`clockwork_controller::Scheduler`] trait as the
//! real scheduler, so the system harness can swap them in unchanged, and both
//! are fault-aware: churn events route through their worker-state tracker
//! (dead capacity is parked, lost in-flight requests are requeued, recovered
//! capacity re-admitted cold), so they run under the same chaos plans as
//! Clockwork. They are intended to be paired with workers configured in
//! [`clockwork_worker::ExecMode::Concurrent`] mode, which is how the
//! underlying frameworks they model behave — their factories report exactly
//! that as their default execution mode.
//!
//! The facade does not link this crate. Disciplines flow the other way:
//! [`register_baselines`] adds [`ClipperFactory`] and [`InfaasFactory`] to a
//! [`SchedulerRegistry`], and experiment harnesses build `Box<dyn Scheduler>`
//! instances from the registry.

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod clipper;
pub mod infaas;

pub use clipper::{ClipperConfig, ClipperFactory, ClipperScheduler};
pub use infaas::{InfaasConfig, InfaasFactory, InfaasScheduler};

use clockwork_controller::registry::SchedulerRegistry;

/// Registers the baseline disciplines (`clipper`, then `infaas`) with their
/// default configurations. Call on top of [`SchedulerRegistry::builtin`] to
/// obtain the paper's full four-discipline comparison set.
pub fn register_baselines(registry: &mut SchedulerRegistry) {
    registry.register(Box::new(ClipperFactory::default()));
    registry.register(Box::new(InfaasFactory::default()));
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn registering_baselines_yields_the_four_discipline_comparison_set() {
        let mut registry = SchedulerRegistry::builtin();
        register_baselines(&mut registry);
        assert_eq!(
            registry.names(),
            vec!["clockwork", "fifo", "clipper", "infaas"]
        );
        for factory in registry.iter() {
            let scheduler = factory.build();
            assert_eq!(scheduler.name(), factory.name());
        }
    }
}
