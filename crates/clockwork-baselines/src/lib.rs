//! Baseline serving disciplines (§6.1, §8).
//!
//! The paper compares Clockwork against Clipper (NSDI '17) and INFaaS
//! (arXiv '19). Both are *reactive*, best-effort systems layered on top of
//! opaque model-execution frameworks: they treat the latency SLO as a
//! long-term target to steer towards (adaptive batching, model-variant
//! selection, autoscaling) rather than a per-request guarantee, they do not
//! control worker memory or execution order, and they happily run kernels
//! concurrently on the GPU.
//!
//! These reimplementations capture those disciplines on the same simulated
//! substrate as Clockwork, so the Fig. 5 comparison isolates the
//! architectural difference (reactive/best-effort vs. proactive/consolidated)
//! rather than implementation details:
//!
//! * [`clipper::ClipperScheduler`] — per-model queues with adaptive batching
//!   driven by an SLO feedback loop, models pinned to workers, loads on
//!   demand, no admission control, unbounded action windows.
//! * [`infaas::InfaasScheduler`] — model-variant (batch-size) selection per
//!   request plus reactive replication to more GPUs when a model's queue
//!   grows, again without admission control or execution windows.
//!
//! Both implement the same [`clockwork_controller::Scheduler`] trait as the
//! real scheduler, so the system harness can swap them in unchanged. They are
//! intended to be paired with workers configured in
//! [`clockwork_worker::ExecMode::Concurrent`] mode, which is how the
//! underlying frameworks they model behave.

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod clipper;
pub mod infaas;

pub use clipper::{ClipperConfig, ClipperScheduler};
pub use infaas::{InfaasConfig, InfaasScheduler};
