//! An INFaaS-like reactive serving discipline.
//!
//! INFaaS [ATC '21 / arXiv '19] serves each request with a "model variant"
//! chosen to navigate the cost/latency trade-off, and reacts to load by
//! scaling variants up/down and replicating models across workers. Its
//! distinguishing mechanisms, reproduced here:
//!
//! * **variant selection**: per dispatch, a batch size is picked based on the
//!   queue length and the request SLO (larger, more efficient variants when
//!   the SLO is loose and the queue deep);
//! * **reactive replication**: when a model's queue stays above a threshold,
//!   the model is replicated to the least-loaded GPU; and
//! * like Clipper, **no admission control and no execution windows** — the
//!   SLO steers policy but is never enforced per request.

use std::collections::{BTreeMap, HashMap, VecDeque};
use std::sync::Arc;

use serde::{Deserialize, Serialize};

use clockwork_controller::request::{InferenceRequest, RejectReason, RequestOutcome, Response};
use clockwork_controller::scheduler::{Scheduler, SchedulerCtx, TickOutcome};
use clockwork_controller::worker_state::{GpuRef, OutstandingAction, WorkerStateTracker};
use clockwork_model::{ModelId, ModelSpec};
use clockwork_sim::time::{Nanos, Timestamp};
use clockwork_worker::{ActionKind, ActionOutcome, ActionResult, TimeWindow};

/// Configuration of the INFaaS-like discipline.
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub struct InfaasConfig {
    /// Queue length above which a model is replicated to another GPU.
    pub replication_queue_threshold: usize,
    /// Maximum replicas per model.
    pub max_replicas: usize,
    /// Maximum INFER actions in flight per replica.
    pub max_outstanding_per_replica: usize,
}

impl Default for InfaasConfig {
    fn default() -> Self {
        InfaasConfig {
            replication_queue_threshold: 32,
            max_replicas: 4,
            max_outstanding_per_replica: 4,
        }
    }
}

struct ModelState {
    spec: Arc<ModelSpec>,
    queue: VecDeque<InferenceRequest>,
    replicas: Vec<GpuRef>,
    loading: Vec<GpuRef>,
    outstanding: usize,
    next_replica: usize,
}

/// The INFaaS-like scheduler.
pub struct InfaasScheduler {
    config: InfaasConfig,
    // Ordered by ModelId: dispatch and replication visit models in map
    // order, and that order decides which model claims shared capacity
    // first — a HashMap here would make the run a function of the hasher
    // seed.
    models: BTreeMap<ModelId, ModelState>,
    tracker: WorkerStateTracker,
    in_flight: HashMap<clockwork_worker::ActionId, Vec<InferenceRequest>>,
    load_targets: HashMap<clockwork_worker::ActionId, GpuRef>,
    load_estimates: HashMap<ModelId, Nanos>,
    next_gpu: usize,
}

impl InfaasScheduler {
    /// Creates a scheduler with the given configuration.
    pub fn new(config: InfaasConfig) -> Self {
        InfaasScheduler {
            config,
            models: BTreeMap::new(),
            tracker: WorkerStateTracker::new(),
            in_flight: HashMap::new(),
            load_targets: HashMap::new(),
            load_estimates: HashMap::new(),
            next_gpu: 0,
        }
    }

    /// Creates a scheduler with default settings.
    pub fn with_defaults() -> Self {
        Self::new(InfaasConfig::default())
    }

    /// Registers a GPU.
    pub fn add_gpu(&mut self, gpu_ref: GpuRef, total_pages: u64, page_size: u64) {
        self.tracker.add_gpu(gpu_ref, total_pages, page_size);
    }

    /// Registers a model.
    pub fn add_model(&mut self, id: ModelId, spec: Arc<ModelSpec>, load_estimate: Nanos) {
        self.load_estimates.insert(id, load_estimate);
        self.models.insert(
            id,
            ModelState {
                spec,
                queue: VecDeque::new(),
                replicas: Vec::new(),
                loading: Vec::new(),
                outstanding: 0,
                next_replica: 0,
            },
        );
    }

    /// Number of replicas (loaded GPUs) a model currently has.
    pub fn replica_count(&self, model: ModelId) -> usize {
        self.models
            .get(&model)
            .map(|m| m.replicas.len())
            .unwrap_or(0)
    }

    /// Picks the batch-size variant for a dispatch: deeper queues and looser
    /// SLOs choose larger (more efficient) variants.
    fn select_variant(spec: &ModelSpec, queue_len: usize, slo: Nanos) -> u32 {
        let by_queue = spec
            .supported_batches()
            .into_iter()
            .filter(|&b| (b as usize) <= queue_len.max(1))
            .max()
            .unwrap_or(1);
        let by_slo = spec
            .largest_batch_within(slo.mul_f64(0.5))
            .map(|p| p.batch)
            .unwrap_or(1);
        by_queue.min(by_slo).max(1)
    }

    fn issue_load(
        &mut self,
        now: Timestamp,
        model_id: ModelId,
        gpu_ref: GpuRef,
        ctx: &mut SchedulerCtx,
    ) {
        let load_est = self
            .load_estimates
            .get(&model_id)
            .copied()
            .unwrap_or(Nanos::from_millis(10));
        let weights = self.models[&model_id].spec.weights_bytes();
        let id = ctx.send_action(
            gpu_ref.worker,
            gpu_ref.gpu,
            ActionKind::Load { model: model_id },
            TimeWindow::always(),
            load_est,
        );
        if let Some(track) = self.tracker.get_mut(gpu_ref) {
            let pages = track.pages_for(weights);
            track.note_load_sent(
                OutstandingAction {
                    id,
                    model: model_id,
                    expected_completion: now + load_est,
                    is_load: true,
                },
                pages,
                now,
                load_est,
            );
        }
        self.load_targets.insert(id, gpu_ref);
        self.models
            .get_mut(&model_id)
            .expect("model exists")
            .loading
            .push(gpu_ref);
    }

    fn maybe_replicate(&mut self, now: Timestamp, model_id: ModelId, ctx: &mut SchedulerCtx) {
        let (queue_len, replicas, loading) = {
            let state = &self.models[&model_id];
            (state.queue.len(), state.replicas.len(), state.loading.len())
        };
        let total = replicas + loading;
        let needs_first = total == 0 && queue_len > 0;
        let needs_scale = queue_len >= self.config.replication_queue_threshold
            && total < self.config.max_replicas;
        if !(needs_first || needs_scale) {
            return;
        }
        if self.tracker.is_empty() {
            return;
        }
        // Replicate onto the least-loaded GPU not already hosting the model.
        let existing: Vec<GpuRef> = {
            let state = &self.models[&model_id];
            state
                .replicas
                .iter()
                .chain(state.loading.iter())
                .copied()
                .collect()
        };
        // Only live GPUs are replication targets; a dead GPU would swallow
        // the LOAD without ever answering.
        let target = self
            .tracker
            .gpus()
            .iter()
            .filter(|g| g.alive && !existing.contains(&g.gpu_ref))
            .min_by_key(|g| (g.next_exec_slot(now), g.gpu_ref))
            .map(|g| g.gpu_ref)
            .or_else(|| {
                let alive: Vec<GpuRef> = self
                    .tracker
                    .gpus()
                    .iter()
                    .filter(|g| g.alive)
                    .map(|g| g.gpu_ref)
                    .collect();
                if alive.is_empty() {
                    None
                } else {
                    Some(alive[self.next_gpu % alive.len()])
                }
            });
        self.next_gpu = self.next_gpu.wrapping_add(1);
        if let Some(target) = target {
            if !existing.contains(&target) {
                self.issue_load(now, model_id, target, ctx);
            }
        }
    }

    fn dispatch(&mut self, now: Timestamp, ctx: &mut SchedulerCtx) {
        let model_ids: Vec<ModelId> = self.models.keys().copied().collect();
        for model_id in model_ids {
            self.maybe_replicate(now, model_id, ctx);
            loop {
                let (ready, limit) = {
                    let state = &self.models[&model_id];
                    (
                        !state.replicas.is_empty() && !state.queue.is_empty(),
                        state.replicas.len() * self.config.max_outstanding_per_replica,
                    )
                };
                if !ready || self.models[&model_id].outstanding >= limit.max(1) {
                    break;
                }
                let state = self.models.get_mut(&model_id).expect("model exists");
                let slo = state.queue.front().map(|r| r.slo).unwrap_or(Nanos::MAX);
                let batch = Self::select_variant(&state.spec, state.queue.len(), slo);
                let take = (batch as usize).min(state.queue.len());
                let requests: Vec<InferenceRequest> = state.queue.drain(..take).collect();
                let replica = state.replicas[state.next_replica % state.replicas.len()];
                state.next_replica = state.next_replica.wrapping_add(1);
                let exec_est = state
                    .spec
                    .exec_latency(batch)
                    .unwrap_or(Nanos::from_millis(10));
                state.outstanding += 1;
                let id = ctx.send_action(
                    replica.worker,
                    replica.gpu,
                    ActionKind::Infer {
                        model: model_id,
                        batch,
                        request_ids: requests.iter().map(|r| r.id.0).collect(),
                    },
                    TimeWindow::always(),
                    exec_est,
                );
                if let Some(track) = self.tracker.get_mut(replica) {
                    track.note_infer_sent(
                        OutstandingAction {
                            id,
                            model: model_id,
                            expected_completion: now + exec_est,
                            is_load: false,
                        },
                        now,
                        exec_est,
                    );
                }
                self.in_flight.insert(id, requests);
            }
        }
    }
}

impl Scheduler for InfaasScheduler {
    fn add_gpu(&mut self, gpu_ref: GpuRef, total_pages: u64, page_size: u64) {
        InfaasScheduler::add_gpu(self, gpu_ref, total_pages, page_size);
    }

    fn add_model(&mut self, id: ModelId, spec: Arc<ModelSpec>, load_seed: Nanos) {
        InfaasScheduler::add_model(self, id, spec, load_seed);
    }

    fn as_any(&self) -> &dyn std::any::Any {
        self
    }

    fn on_request(&mut self, now: Timestamp, request: InferenceRequest, ctx: &mut SchedulerCtx) {
        let Some(state) = self.models.get_mut(&request.model) else {
            ctx.send_response(Response {
                request: request.id,
                model: request.model,
                arrival: request.arrival,
                deadline: request.deadline(),
                outcome: RequestOutcome::Rejected {
                    at: now,
                    reason: RejectReason::UnknownModel,
                },
            });
            return;
        };
        state.queue.push_back(request);
        self.dispatch(now, ctx);
    }

    fn on_result(&mut self, now: Timestamp, result: &ActionResult, ctx: &mut SchedulerCtx) {
        let gpu_ref = GpuRef {
            worker: result.worker,
            gpu: result.gpu,
        };
        match result.action_type {
            "LOAD" => {
                // A result whose action is no longer outstanding is stale —
                // the GPU died (and was wiped) after producing it; it must
                // not resurrect a replica on capacity that no longer holds
                // the weights.
                let applied = self
                    .tracker
                    .get_mut(gpu_ref)
                    .map(|t| {
                        t.note_load_result(result.action_id, result.model, result.is_success())
                    })
                    .unwrap_or(false);
                let target = self
                    .load_targets
                    .remove(&result.action_id)
                    .unwrap_or(gpu_ref);
                if applied {
                    if let Some(state) = self.models.get_mut(&result.model) {
                        state.loading.retain(|g| *g != target);
                        if result.is_success() && !state.replicas.contains(&target) {
                            state.replicas.push(target);
                        }
                    }
                }
            }
            "INFER" => {
                if let Some(track) = self.tracker.get_mut(gpu_ref) {
                    track.note_infer_result(result.action_id);
                }
                if let Some(requests) = self.in_flight.remove(&result.action_id) {
                    // The decrement sits behind the `in_flight` staleness
                    // guard: a result from a batch that a fault already
                    // resolved was decremented by `on_fault`, and counting
                    // it twice would defeat the per-replica outstanding cap.
                    if let Some(state) = self.models.get_mut(&result.model) {
                        state.outstanding = state.outstanding.saturating_sub(1);
                    }
                    match &result.outcome {
                        ActionOutcome::Success(timing) => {
                            for r in &requests {
                                ctx.send_response(Response {
                                    request: r.id,
                                    model: r.model,
                                    arrival: r.arrival,
                                    deadline: r.deadline(),
                                    outcome: RequestOutcome::Success {
                                        completed: timing.end,
                                        batch: result.batch,
                                        worker: result.worker,
                                        gpu: result.gpu,
                                        cold_start: false,
                                    },
                                });
                            }
                        }
                        ActionOutcome::Error { .. } => {
                            if let Some(state) = self.models.get_mut(&result.model) {
                                for r in requests.into_iter().rev() {
                                    state.queue.push_front(r);
                                }
                            }
                        }
                    }
                }
            }
            _ => {}
        }
        self.dispatch(now, ctx);
    }

    fn on_tick(&mut self, now: Timestamp, ctx: &mut SchedulerCtx) -> TickOutcome {
        self.dispatch(now, ctx);
        TickOutcome::Full
    }

    fn on_fault(
        &mut self,
        now: Timestamp,
        fault: &clockwork_sim::engine::FaultKind,
        ctx: &mut SchedulerCtx,
    ) {
        // Minimal fault awareness: park the dead capacity, drop it from every
        // replica set (dispatch and replication only consider live replicas),
        // and requeue the requests whose in-flight batches died with it. The
        // replication path then rebuilds replicas on live GPUs on demand.
        let lost = self.tracker.apply_fault(now, fault);
        let tracker = &self.tracker;
        for state in self.models.values_mut() {
            let alive = |g: &GpuRef| tracker.get(*g).map(|t| t.alive).unwrap_or(false);
            state.replicas.retain(alive);
            state.loading.retain(alive);
        }
        for id in lost.iter().rev() {
            self.load_targets.remove(id);
            if let Some(requests) = self.in_flight.remove(id) {
                if let Some(first) = requests.first() {
                    if let Some(state) = self.models.get_mut(&first.model) {
                        state.outstanding = state.outstanding.saturating_sub(1);
                        for r in requests.into_iter().rev() {
                            state.queue.push_front(r);
                        }
                    }
                }
            }
        }
        self.dispatch(now, ctx);
    }

    fn next_tick(&self, now: Timestamp) -> Option<Timestamp> {
        if self.models.values().any(|m| !m.queue.is_empty()) {
            Some(now + Nanos::from_millis(1))
        } else {
            None
        }
    }

    fn name(&self) -> &'static str {
        "infaas"
    }
}

/// Factory registering the INFaaS-like discipline
/// (see [`clockwork_controller::registry`]).
#[derive(Clone, Copy, Debug, Default)]
pub struct InfaasFactory {
    /// Configuration every built scheduler starts from.
    pub config: InfaasConfig,
}

impl InfaasFactory {
    /// A factory building INFaaS schedulers with the given configuration.
    pub fn new(config: InfaasConfig) -> Self {
        InfaasFactory { config }
    }
}

impl clockwork_controller::registry::SchedulerFactory for InfaasFactory {
    fn name(&self) -> &'static str {
        "infaas"
    }

    fn default_exec_mode(&self) -> clockwork_worker::ExecMode {
        // INFaaS runs atop frameworks that execute kernels concurrently.
        clockwork_worker::ExecMode::Concurrent { max_concurrent: 16 }
    }

    fn build(&self) -> Box<dyn Scheduler> {
        Box::new(InfaasScheduler::new(self.config))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use clockwork_controller::request::RequestId;
    use clockwork_model::zoo::ModelZoo;
    use clockwork_model::Tier;
    use clockwork_worker::{ActionTiming, GpuId, WorkerId};

    const PAGE: u64 = 16 * 1024 * 1024;

    fn gref(w: u32) -> GpuRef {
        GpuRef {
            worker: WorkerId(w),
            gpu: GpuId(0),
        }
    }

    fn resnet() -> Arc<ModelSpec> {
        Arc::new(ModelZoo::new().resnet50().clone())
    }

    fn request(id: u64, slo_ms: u64) -> InferenceRequest {
        InferenceRequest {
            id: RequestId(id),
            model: ModelId(1),
            arrival: Timestamp::ZERO,
            slo: Nanos::from_millis(slo_ms),
            tier: Tier::Strict,
        }
    }

    fn success(action: &clockwork_worker::Action, worker: WorkerId, end_ms: u64) -> ActionResult {
        let (model, batch, request_ids) = match &action.kind {
            ActionKind::Infer {
                model,
                batch,
                request_ids,
            } => (*model, *batch, request_ids.clone()),
            ActionKind::Load { model } => (*model, 1, vec![]),
            ActionKind::Unload { model } => (*model, 1, vec![]),
        };
        ActionResult {
            action_id: action.id,
            worker,
            gpu: GpuId(0),
            model,
            action_type: action.kind.type_name(),
            batch,
            request_ids,
            expected_duration: action.expected_duration,
            outcome: ActionOutcome::Success(ActionTiming {
                received: Timestamp::ZERO,
                start: Timestamp::from_millis(end_ms.saturating_sub(3)),
                end: Timestamp::from_millis(end_ms),
                device_duration: Nanos::from_millis(3),
            }),
        }
    }

    #[test]
    fn variant_selection_scales_with_queue_and_slo() {
        let spec = resnet();
        assert_eq!(
            InfaasScheduler::select_variant(&spec, 1, Nanos::from_millis(100)),
            1
        );
        assert!(InfaasScheduler::select_variant(&spec, 20, Nanos::from_millis(200)) >= 8);
        // Tight SLO caps the variant even with a deep queue.
        assert_eq!(
            InfaasScheduler::select_variant(&spec, 20, Nanos::from_millis(6)),
            1
        );
    }

    #[test]
    fn first_request_triggers_load_then_dispatch() {
        let mut s = InfaasScheduler::with_defaults();
        s.add_gpu(gref(0), 100, PAGE);
        s.add_model(ModelId(1), resnet(), Nanos::from_millis(8));
        let mut ctx = SchedulerCtx::new();
        s.on_request(Timestamp::ZERO, request(1, 100), &mut ctx);
        let actions = ctx.take_actions();
        assert_eq!(actions.len(), 1);
        assert_eq!(actions[0].1.kind.type_name(), "LOAD");
        s.on_result(
            Timestamp::from_millis(9),
            &success(&actions[0].1, WorkerId(0), 9),
            &mut ctx,
        );
        assert_eq!(s.replica_count(ModelId(1)), 1);
        let actions = ctx.take_actions();
        assert_eq!(actions.len(), 1);
        assert_eq!(actions[0].1.kind.type_name(), "INFER");
        s.on_result(
            Timestamp::from_millis(13),
            &success(&actions[0].1, WorkerId(0), 13),
            &mut ctx,
        );
        assert_eq!(ctx.take_responses().len(), 1);
    }

    #[test]
    fn deep_queues_trigger_replication_to_other_gpus() {
        let config = InfaasConfig {
            replication_queue_threshold: 8,
            ..Default::default()
        };
        let mut s = InfaasScheduler::new(config);
        s.add_gpu(gref(0), 100, PAGE);
        s.add_gpu(gref(1), 100, PAGE);
        s.add_model(ModelId(1), resnet(), Nanos::from_millis(8));
        let mut ctx = SchedulerCtx::new();
        // Flood with requests while the first replica is still loading.
        for i in 0..40 {
            s.on_request(Timestamp::ZERO, request(i, 1_000), &mut ctx);
        }
        let actions = ctx.take_actions();
        let load_workers: std::collections::HashSet<WorkerId> = actions
            .iter()
            .filter(|(_, a)| a.kind.type_name() == "LOAD")
            .map(|(w, _)| *w)
            .collect();
        assert!(
            load_workers.len() >= 2,
            "expected replication across GPUs, got {load_workers:?}"
        );
    }

    #[test]
    fn faults_drop_dead_replicas_and_rebuild_on_live_capacity() {
        use clockwork_sim::engine::FaultKind;
        let mut s = InfaasScheduler::with_defaults();
        s.add_gpu(gref(0), 100, PAGE);
        s.add_gpu(gref(1), 100, PAGE);
        s.add_model(ModelId(1), resnet(), Nanos::from_millis(8));
        let mut ctx = SchedulerCtx::new();
        // Establish one replica on worker 0.
        s.on_request(Timestamp::ZERO, request(1, 100), &mut ctx);
        let load = ctx.take_actions().remove(0);
        assert_eq!(load.0, WorkerId(0));
        s.on_result(
            Timestamp::from_millis(9),
            &success(&load.1, WorkerId(0), 9),
            &mut ctx,
        );
        assert_eq!(s.replica_count(ModelId(1)), 1);
        let _ = ctx.take_actions();
        // The replica's worker dies: the replica set empties and the queued
        // work triggers a rebuild on the surviving worker only.
        s.on_request(Timestamp::from_millis(10), request(2, 100), &mut ctx);
        let _ = ctx.take_actions();
        s.on_fault(
            Timestamp::from_millis(11),
            &FaultKind::WorkerCrash { worker: 0 },
            &mut ctx,
        );
        assert_eq!(s.replica_count(ModelId(1)), 0, "dead replicas are dropped");
        let actions = ctx.take_actions();
        assert!(
            actions.iter().all(|(w, _)| *w == WorkerId(1)),
            "rebuild must target live capacity: {actions:?}"
        );
        let reload = actions
            .iter()
            .find(|(_, a)| a.kind.type_name() == "LOAD")
            .expect("a replacement LOAD is issued");
        s.on_result(
            Timestamp::from_millis(20),
            &success(&reload.1, WorkerId(1), 20),
            &mut ctx,
        );
        assert_eq!(
            s.replica_count(ModelId(1)),
            1,
            "replica rebuilt on worker 1"
        );
        assert!(
            ctx.take_actions()
                .iter()
                .any(|(w, a)| *w == WorkerId(1) && a.kind.type_name() == "INFER"),
            "queued requests drain through the new replica"
        );
    }

    #[test]
    fn never_rejects_slo_violating_requests() {
        let mut s = InfaasScheduler::with_defaults();
        s.add_gpu(gref(0), 100, PAGE);
        s.add_model(ModelId(1), resnet(), Nanos::from_millis(8));
        let mut ctx = SchedulerCtx::new();
        s.on_request(Timestamp::ZERO, request(1, 1), &mut ctx);
        assert!(ctx.take_responses().is_empty());
        assert_eq!(s.name(), "infaas");
    }

    #[test]
    fn unknown_model_is_rejected() {
        let mut s = InfaasScheduler::with_defaults();
        s.add_gpu(gref(0), 100, PAGE);
        let mut ctx = SchedulerCtx::new();
        let r = InferenceRequest {
            id: RequestId(7),
            model: ModelId(9),
            arrival: Timestamp::ZERO,
            slo: Nanos::from_millis(50),
            tier: Tier::Strict,
        };
        s.on_request(Timestamp::ZERO, r, &mut ctx);
        assert_eq!(ctx.take_responses().len(), 1);
    }
}
