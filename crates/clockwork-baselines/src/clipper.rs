//! A Clipper-like reactive serving discipline.
//!
//! Clipper [NSDI '17] sits in front of framework-managed model containers.
//! Its distinctive mechanisms, reproduced here, are:
//!
//! * **per-model queues** with **adaptive batching**: the batch size grows
//!   (additively) while observed latency stays under the SLO and shrinks
//!   (multiplicatively) when it overshoots — the SLO is a long-term average
//!   target, not a per-request bound. Dispatch *accumulates*: while fewer
//!   than `target_batch` requests are queued, the queue is held up to
//!   [`ClipperConfig::batch_timeout`] (measured from the oldest request's
//!   arrival) so the adaptive target actually translates into formed
//!   batches instead of a stream of singletons;
//! * **static model placement**: each model is pinned to a worker/GPU
//!   (Clipper containers do not migrate), loaded on first use;
//! * **no admission control** and **no execution windows**: every request is
//!   eventually executed, however late; and
//! * dispatch is otherwise best-effort, leaving ordering and concurrency
//!   decisions to the lower layers.

use std::collections::{BTreeMap, HashMap, VecDeque};
use std::sync::Arc;

use serde::{Deserialize, Serialize};

use clockwork_controller::request::{InferenceRequest, RejectReason, RequestOutcome, Response};
use clockwork_controller::scheduler::{Scheduler, SchedulerCtx, TickOutcome};
use clockwork_controller::worker_state::{GpuRef, OutstandingAction, WorkerStateTracker};
use clockwork_model::{ModelId, ModelSpec};
use clockwork_sim::time::{Nanos, Timestamp};
use clockwork_worker::{ActionKind, ActionOutcome, ActionResult, TimeWindow};

/// Configuration of the Clipper-like discipline.
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub struct ClipperConfig {
    /// Maximum batch size the adaptive controller may reach.
    pub max_batch: u32,
    /// Additive increase step applied when latency is under the SLO.
    pub batch_increase: u32,
    /// Multiplicative decrease factor applied when latency overshoots.
    pub batch_decrease: f64,
    /// Maximum INFER actions in flight per model (pipeline depth).
    pub max_outstanding_per_model: usize,
    /// How long the queue may be held waiting for `target_batch` requests
    /// to accumulate, measured from the oldest queued request's arrival.
    /// Once the oldest request has waited this long — or the queue reaches
    /// the target — whatever is queued is dispatched. Zero disables
    /// accumulation (the pre-batching eager dispatch).
    pub batch_timeout: Nanos,
}

impl Default for ClipperConfig {
    fn default() -> Self {
        ClipperConfig {
            max_batch: 16,
            batch_increase: 1,
            batch_decrease: 0.5,
            max_outstanding_per_model: 4,
            batch_timeout: Nanos::from_millis(2),
        }
    }
}

struct ModelState {
    spec: Arc<ModelSpec>,
    queue: VecDeque<InferenceRequest>,
    home: Option<GpuRef>,
    loaded: bool,
    load_requested: bool,
    target_batch: u32,
    outstanding: usize,
    slo_hint: Nanos,
}

/// The Clipper-like scheduler.
pub struct ClipperScheduler {
    config: ClipperConfig,
    // Ordered by ModelId: dispatch visits models in map order, and that
    // order decides which model claims shared capacity first — a HashMap
    // here would make the run a function of the hasher seed.
    models: BTreeMap<ModelId, ModelState>,
    tracker: WorkerStateTracker,
    in_flight: HashMap<clockwork_worker::ActionId, Vec<InferenceRequest>>,
    next_home: usize,
    load_estimates: HashMap<ModelId, Nanos>,
}

impl ClipperScheduler {
    /// Creates a scheduler with the given configuration.
    pub fn new(config: ClipperConfig) -> Self {
        ClipperScheduler {
            config,
            models: BTreeMap::new(),
            tracker: WorkerStateTracker::new(),
            in_flight: HashMap::new(),
            next_home: 0,
            load_estimates: HashMap::new(),
        }
    }

    /// Creates a scheduler with default settings.
    pub fn with_defaults() -> Self {
        Self::new(ClipperConfig::default())
    }

    /// Registers a GPU.
    pub fn add_gpu(&mut self, gpu_ref: GpuRef, total_pages: u64, page_size: u64) {
        self.tracker.add_gpu(gpu_ref, total_pages, page_size);
    }

    /// Registers a model.
    pub fn add_model(&mut self, id: ModelId, spec: Arc<ModelSpec>, load_estimate: Nanos) {
        self.load_estimates.insert(id, load_estimate);
        self.models.insert(
            id,
            ModelState {
                spec,
                queue: VecDeque::new(),
                home: None,
                loaded: false,
                load_requested: false,
                target_batch: 1,
                outstanding: 0,
                slo_hint: Nanos::from_millis(100),
            },
        );
    }

    /// The current adaptive batch size of a model (for tests).
    pub fn target_batch(&self, model: ModelId) -> Option<u32> {
        self.models.get(&model).map(|m| m.target_batch)
    }

    fn assign_home(&mut self, model: ModelId) -> Option<GpuRef> {
        // An already-assigned home is always live — `on_fault` clears homes
        // on dead capacity — so the common dispatch path pays no scan.
        if let Some(home) = self.models.get(&model)?.home {
            return Some(home);
        }
        // Homes are only handed out on live capacity; a model whose home GPU
        // died had its home cleared by `on_fault` and re-lands here.
        let alive: Vec<GpuRef> = self
            .tracker
            .gpus()
            .iter()
            .filter(|g| g.alive)
            .map(|g| g.gpu_ref)
            .collect();
        if alive.is_empty() {
            return None;
        }
        let idx = self.next_home % alive.len();
        self.next_home = self.next_home.wrapping_add(1);
        let state = self.models.get_mut(&model)?;
        state.home = Some(alive[idx]);
        state.home
    }

    fn dispatch(&mut self, now: Timestamp, ctx: &mut SchedulerCtx) {
        let model_ids: Vec<ModelId> = self.models.keys().copied().collect();
        for model_id in model_ids {
            let Some(home) = self.assign_home(model_id) else {
                continue;
            };
            // Issue the one-time load if needed (eagerly, on first request).
            let (needs_load, has_queue) = {
                let state = self.models.get(&model_id).expect("model exists");
                (
                    !state.loaded && !state.load_requested && !state.queue.is_empty(),
                    !state.queue.is_empty(),
                )
            };
            if !has_queue {
                continue;
            }
            if needs_load {
                let load_est = self
                    .load_estimates
                    .get(&model_id)
                    .copied()
                    .unwrap_or(Nanos::from_millis(10));
                let weights = self.models[&model_id].spec.weights_bytes();
                let id = ctx.send_action(
                    home.worker,
                    home.gpu,
                    ActionKind::Load { model: model_id },
                    TimeWindow::always(),
                    load_est,
                );
                if let Some(track) = self.tracker.get_mut(home) {
                    let pages = track.pages_for(weights);
                    track.note_load_sent(
                        OutstandingAction {
                            id,
                            model: model_id,
                            expected_completion: now + load_est,
                            is_load: true,
                        },
                        pages,
                        now,
                        load_est,
                    );
                }
                self.models
                    .get_mut(&model_id)
                    .expect("model exists")
                    .load_requested = true;
            }
            // Dispatch batches up to the pipeline depth.
            loop {
                let state = self.models.get_mut(&model_id).expect("model exists");
                if !state.loaded
                    || state.queue.is_empty()
                    || state.outstanding >= self.config.max_outstanding_per_model
                {
                    break;
                }
                // Accumulation window: when the adaptive target wants a
                // bigger batch than is queued, hold the queue until the
                // oldest request has waited out the timeout. The 1 ms tick
                // grid (`next_tick`) guarantees a held queue is revisited,
                // so the hold releases within a tick of the deadline.
                let target = state
                    .target_batch
                    .min(self.config.max_batch)
                    .min(state.spec.max_batch())
                    .max(1);
                let oldest = state.queue.front().expect("queue non-empty").arrival;
                if target > 1
                    && (state.queue.len() as u32) < target
                    && now < oldest + self.config.batch_timeout
                {
                    break;
                }
                let batch = state
                    .spec
                    .batch_for_count(state.target_batch.min(state.queue.len() as u32))
                    .map(|p| p.batch)
                    .unwrap_or(1)
                    .min(state.queue.len() as u32)
                    .max(1);
                // Only exact compiled batch sizes can run; round down.
                let batch = state
                    .spec
                    .supported_batches()
                    .into_iter()
                    .filter(|&b| b <= batch)
                    .max()
                    .unwrap_or(1);
                let take = batch as usize;
                let requests: Vec<InferenceRequest> = state.queue.drain(..take).collect();
                let exec_est = state
                    .spec
                    .exec_latency(batch)
                    .unwrap_or(Nanos::from_millis(10));
                state.outstanding += 1;
                let id = ctx.send_action(
                    home.worker,
                    home.gpu,
                    ActionKind::Infer {
                        model: model_id,
                        batch,
                        request_ids: requests.iter().map(|r| r.id.0).collect(),
                    },
                    TimeWindow::always(),
                    exec_est,
                );
                if let Some(track) = self.tracker.get_mut(home) {
                    track.note_infer_sent(
                        OutstandingAction {
                            id,
                            model: model_id,
                            expected_completion: now + exec_est,
                            is_load: false,
                        },
                        now,
                        exec_est,
                    );
                }
                self.in_flight.insert(id, requests);
            }
        }
    }

    fn adapt_batch(&mut self, model: ModelId, observed_latency: Nanos) {
        let Some(state) = self.models.get_mut(&model) else {
            return;
        };
        if observed_latency <= state.slo_hint {
            state.target_batch = (state.target_batch + self.config.batch_increase)
                .min(self.config.max_batch)
                .min(state.spec.max_batch());
        } else {
            let reduced = (state.target_batch as f64 * self.config.batch_decrease).floor() as u32;
            state.target_batch = reduced.max(1);
        }
    }
}

impl Scheduler for ClipperScheduler {
    fn add_gpu(&mut self, gpu_ref: GpuRef, total_pages: u64, page_size: u64) {
        ClipperScheduler::add_gpu(self, gpu_ref, total_pages, page_size);
    }

    fn add_model(&mut self, id: ModelId, spec: Arc<ModelSpec>, load_seed: Nanos) {
        ClipperScheduler::add_model(self, id, spec, load_seed);
    }

    fn as_any(&self) -> &dyn std::any::Any {
        self
    }

    fn on_request(&mut self, now: Timestamp, request: InferenceRequest, ctx: &mut SchedulerCtx) {
        let Some(state) = self.models.get_mut(&request.model) else {
            ctx.send_response(Response {
                request: request.id,
                model: request.model,
                arrival: request.arrival,
                deadline: request.deadline(),
                outcome: RequestOutcome::Rejected {
                    at: now,
                    reason: RejectReason::UnknownModel,
                },
            });
            return;
        };
        if request.has_slo() {
            state.slo_hint = request.slo;
        }
        state.queue.push_back(request);
        self.dispatch(now, ctx);
    }

    fn on_result(&mut self, now: Timestamp, result: &ActionResult, ctx: &mut SchedulerCtx) {
        let gpu_ref = GpuRef {
            worker: result.worker,
            gpu: result.gpu,
        };
        match result.action_type {
            "LOAD" => {
                // A result whose action is no longer outstanding is stale —
                // the GPU died (and was wiped) after producing it. Applying
                // it anyway would mark the model loaded on a home that no
                // longer exists and wedge every future dispatch.
                let applied = self
                    .tracker
                    .get_mut(gpu_ref)
                    .map(|t| {
                        t.note_load_result(result.action_id, result.model, result.is_success())
                    })
                    .unwrap_or(false);
                if applied {
                    if let Some(state) = self.models.get_mut(&result.model) {
                        state.loaded = result.is_success();
                        state.load_requested = result.is_success();
                    }
                }
            }
            "INFER" => {
                if let Some(track) = self.tracker.get_mut(gpu_ref) {
                    track.note_infer_result(result.action_id);
                }
                if let Some(requests) = self.in_flight.remove(&result.action_id) {
                    // The decrement sits behind the `in_flight` staleness
                    // guard: a result from a batch that a fault already
                    // resolved was decremented by `on_fault`, and counting
                    // it twice would defeat the per-model outstanding cap.
                    if let Some(state) = self.models.get_mut(&result.model) {
                        state.outstanding = state.outstanding.saturating_sub(1);
                    }
                    match &result.outcome {
                        ActionOutcome::Success(timing) => {
                            for r in &requests {
                                ctx.send_response(Response {
                                    request: r.id,
                                    model: r.model,
                                    arrival: r.arrival,
                                    deadline: r.deadline(),
                                    outcome: RequestOutcome::Success {
                                        completed: timing.end,
                                        batch: result.batch,
                                        worker: result.worker,
                                        gpu: result.gpu,
                                        cold_start: false,
                                    },
                                });
                            }
                            if let Some(first) = requests.first() {
                                self.adapt_batch(first.model, timing.end - first.arrival);
                            }
                        }
                        ActionOutcome::Error { .. } => {
                            // Best effort: retry by putting requests back.
                            if let Some(state) = self.models.get_mut(&result.model) {
                                for r in requests.into_iter().rev() {
                                    state.queue.push_front(r);
                                }
                            }
                        }
                    }
                }
            }
            _ => {}
        }
        self.dispatch(now, ctx);
    }

    fn on_tick(&mut self, now: Timestamp, ctx: &mut SchedulerCtx) -> TickOutcome {
        self.dispatch(now, ctx);
        TickOutcome::Full
    }

    fn on_fault(
        &mut self,
        now: Timestamp,
        fault: &clockwork_sim::engine::FaultKind,
        ctx: &mut SchedulerCtx,
    ) {
        // Minimal fault awareness: park the dead capacity, requeue the
        // requests whose in-flight batches died with it, and evict any model
        // home that pointed at it so `assign_home` re-places the model on
        // live capacity (reloading from scratch).
        let lost = self.tracker.apply_fault(now, fault);
        for id in lost.iter().rev() {
            if let Some(requests) = self.in_flight.remove(id) {
                if let Some(first) = requests.first() {
                    if let Some(state) = self.models.get_mut(&first.model) {
                        state.outstanding = state.outstanding.saturating_sub(1);
                        for r in requests.into_iter().rev() {
                            state.queue.push_front(r);
                        }
                    }
                }
            }
        }
        let tracker = &self.tracker;
        for state in self.models.values_mut() {
            let home_dead = state
                .home
                .map(|h| tracker.get(h).map(|t| !t.alive).unwrap_or(true))
                .unwrap_or(false);
            if home_dead {
                state.home = None;
                state.loaded = false;
                state.load_requested = false;
            }
        }
        self.dispatch(now, ctx);
    }

    fn next_tick(&self, now: Timestamp) -> Option<Timestamp> {
        if self.models.values().any(|m| !m.queue.is_empty()) {
            Some(now + Nanos::from_millis(1))
        } else {
            None
        }
    }

    fn name(&self) -> &'static str {
        "clipper"
    }
}

/// Factory registering the Clipper-like discipline
/// (see [`clockwork_controller::registry`]).
#[derive(Clone, Copy, Debug, Default)]
pub struct ClipperFactory {
    /// Configuration every built scheduler starts from.
    pub config: ClipperConfig,
}

impl ClipperFactory {
    /// A factory building Clipper schedulers with the given configuration.
    pub fn new(config: ClipperConfig) -> Self {
        ClipperFactory { config }
    }
}

impl clockwork_controller::registry::SchedulerFactory for ClipperFactory {
    fn name(&self) -> &'static str {
        "clipper"
    }

    fn default_exec_mode(&self) -> clockwork_worker::ExecMode {
        // Clipper runs atop frameworks that execute kernels concurrently.
        clockwork_worker::ExecMode::Concurrent { max_concurrent: 16 }
    }

    fn build(&self) -> Box<dyn Scheduler> {
        Box::new(ClipperScheduler::new(self.config))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use clockwork_controller::request::RequestId;
    use clockwork_model::zoo::ModelZoo;
    use clockwork_model::Tier;
    use clockwork_worker::{ActionTiming, GpuId, WorkerId};

    const PAGE: u64 = 16 * 1024 * 1024;

    fn gref() -> GpuRef {
        GpuRef {
            worker: WorkerId(0),
            gpu: GpuId(0),
        }
    }

    fn resnet() -> Arc<ModelSpec> {
        Arc::new(ModelZoo::new().resnet50().clone())
    }

    fn request(id: u64, arrival_ms: u64, slo_ms: u64) -> InferenceRequest {
        InferenceRequest {
            id: RequestId(id),
            model: ModelId(1),
            arrival: Timestamp::from_millis(arrival_ms),
            slo: Nanos::from_millis(slo_ms),
            tier: Tier::Strict,
        }
    }

    fn scheduler() -> ClipperScheduler {
        let mut s = ClipperScheduler::with_defaults();
        s.add_gpu(gref(), 100, PAGE);
        s.add_model(ModelId(1), resnet(), Nanos::from_millis(8));
        s
    }

    fn success(action: &clockwork_worker::Action, end_ms: u64) -> ActionResult {
        let (model, batch, request_ids) = match &action.kind {
            ActionKind::Infer {
                model,
                batch,
                request_ids,
            } => (*model, *batch, request_ids.clone()),
            ActionKind::Load { model } => (*model, 1, vec![]),
            ActionKind::Unload { model } => (*model, 1, vec![]),
        };
        ActionResult {
            action_id: action.id,
            worker: WorkerId(0),
            gpu: GpuId(0),
            model,
            action_type: action.kind.type_name(),
            batch,
            request_ids,
            expected_duration: action.expected_duration,
            outcome: ActionOutcome::Success(ActionTiming {
                received: Timestamp::ZERO,
                start: Timestamp::from_millis(end_ms.saturating_sub(3)),
                end: Timestamp::from_millis(end_ms),
                device_duration: Nanos::from_millis(3),
            }),
        }
    }

    #[test]
    fn loads_on_first_request_then_serves() {
        let mut s = scheduler();
        let mut ctx = SchedulerCtx::new();
        s.on_request(Timestamp::ZERO, request(1, 0, 100), &mut ctx);
        let actions = ctx.take_actions();
        // Only a LOAD: the model is not loaded yet so no INFER can go out.
        assert_eq!(actions.len(), 1);
        assert_eq!(actions[0].1.kind.type_name(), "LOAD");
        assert!(actions[0].1.window.latest == Timestamp::MAX, "no windows");
        // LOAD completes: the queued request is dispatched.
        s.on_result(
            Timestamp::from_millis(9),
            &success(&actions[0].1, 9),
            &mut ctx,
        );
        let actions = ctx.take_actions();
        assert_eq!(actions.len(), 1);
        assert_eq!(actions[0].1.kind.type_name(), "INFER");
        // INFER completes: response goes out.
        s.on_result(
            Timestamp::from_millis(13),
            &success(&actions[0].1, 13),
            &mut ctx,
        );
        let responses = ctx.take_responses();
        assert_eq!(responses.len(), 1);
        assert!(responses[0].outcome.is_success());
    }

    #[test]
    fn never_rejects_requests_up_front() {
        let mut s = scheduler();
        let mut ctx = SchedulerCtx::new();
        // 1 ms SLO on a cold model: Clockwork would reject; Clipper accepts.
        s.on_request(Timestamp::ZERO, request(1, 0, 1), &mut ctx);
        assert!(ctx.take_responses().is_empty());
    }

    #[test]
    fn batch_size_adapts_to_latency_feedback() {
        let mut s = scheduler();
        let mut ctx = SchedulerCtx::new();
        assert_eq!(s.target_batch(ModelId(1)), Some(1));
        // Warm up the model.
        s.on_request(Timestamp::ZERO, request(1, 0, 100), &mut ctx);
        let load = ctx.take_actions().remove(0);
        s.on_result(Timestamp::from_millis(9), &success(&load.1, 9), &mut ctx);
        let mut next_id = 2u64;
        let mut t = 10u64;
        // Fast responses (well under SLO) should grow the batch size.
        for _ in 0..6 {
            s.on_request(
                Timestamp::from_millis(t),
                request(next_id, t, 100),
                &mut ctx,
            );
            next_id += 1;
            for (_, a) in ctx.take_actions() {
                if a.kind.type_name() == "INFER" {
                    s.on_result(Timestamp::from_millis(t + 3), &success(&a, t + 3), &mut ctx);
                }
            }
            let _ = ctx.take_responses();
            t += 5;
        }
        let grown = s.target_batch(ModelId(1)).unwrap();
        assert!(grown > 1, "batch should have grown, is {grown}");
        // A slow response (over SLO) shrinks it multiplicatively. The lone
        // request is held by the accumulation window at first; the next
        // tick past the timeout flushes it.
        s.on_request(Timestamp::from_millis(t), request(next_id, t, 10), &mut ctx);
        let _ = s.on_tick(Timestamp::from_millis(t + 3), &mut ctx);
        for (_, a) in ctx.take_actions() {
            if a.kind.type_name() == "INFER" {
                s.on_result(
                    Timestamp::from_millis(t + 500),
                    &success(&a, t + 500),
                    &mut ctx,
                );
            }
        }
        let shrunk = s.target_batch(ModelId(1)).unwrap();
        assert!(shrunk < grown, "batch should shrink after overshoot");
    }

    #[test]
    fn accumulates_queue_until_target_or_timeout() {
        let mut s = scheduler();
        let mut ctx = SchedulerCtx::new();
        // Warm up: load, serve one request fast so the target grows to 2.
        s.on_request(Timestamp::ZERO, request(1, 0, 100), &mut ctx);
        let load = ctx.take_actions().remove(0);
        s.on_result(Timestamp::from_millis(9), &success(&load.1, 9), &mut ctx);
        for (_, a) in ctx.take_actions() {
            s.on_result(Timestamp::from_millis(12), &success(&a, 12), &mut ctx);
        }
        let _ = ctx.take_responses();
        assert_eq!(s.target_batch(ModelId(1)), Some(2));
        // A single request is held: fewer than target queued, inside the
        // accumulation window.
        s.on_request(Timestamp::from_millis(20), request(2, 20, 100), &mut ctx);
        assert!(ctx.take_actions().is_empty(), "queue held to accumulate");
        // A second arrival fills the target: one batch-2 INFER goes out.
        s.on_request(Timestamp::from_millis(21), request(3, 21, 100), &mut ctx);
        let actions = ctx.take_actions();
        assert_eq!(actions.len(), 1);
        match &actions[0].1.kind {
            ActionKind::Infer {
                batch, request_ids, ..
            } => {
                assert_eq!(*batch, 2);
                assert_eq!(request_ids, &vec![2, 3]);
            }
            other => panic!("expected INFER, got {other:?}"),
        }
        s.on_result(
            Timestamp::from_millis(25),
            &success(&actions[0].1, 25),
            &mut ctx,
        );
        let _ = ctx.take_responses();
        // A lone request that never reaches the target is still released
        // once the oldest arrival has waited out the timeout.
        s.on_request(Timestamp::from_millis(30), request(4, 30, 100), &mut ctx);
        assert!(ctx.take_actions().is_empty(), "held again");
        let _ = s.on_tick(Timestamp::from_millis(31), &mut ctx);
        assert!(ctx.take_actions().is_empty(), "still inside the window");
        let _ = s.on_tick(Timestamp::from_millis(33), &mut ctx);
        let actions = ctx.take_actions();
        assert_eq!(actions.len(), 1, "timeout flushes the partial batch");
        match &actions[0].1.kind {
            ActionKind::Infer { batch, .. } => assert_eq!(*batch, 1),
            other => panic!("expected INFER, got {other:?}"),
        }
    }

    #[test]
    fn faults_evict_dead_homes_and_rehome_on_live_capacity() {
        use clockwork_sim::engine::FaultKind;
        let mut s = ClipperScheduler::with_defaults();
        s.add_gpu(gref(), 100, PAGE);
        s.add_gpu(
            GpuRef {
                worker: WorkerId(1),
                gpu: GpuId(0),
            },
            100,
            PAGE,
        );
        s.add_model(ModelId(1), resnet(), Nanos::from_millis(8));
        let mut ctx = SchedulerCtx::new();
        s.on_request(Timestamp::ZERO, request(1, 0, 100), &mut ctx);
        let actions = ctx.take_actions();
        let (home_worker, stale_load) = (actions[0].0, actions[0].1.clone());
        assert_eq!(home_worker, WorkerId(0), "first home is the first GPU");
        // The home worker crashes while its LOAD is in flight: the model is
        // re-homed onto live capacity with a fresh LOAD.
        s.on_fault(
            Timestamp::from_millis(1),
            &FaultKind::WorkerCrash { worker: 0 },
            &mut ctx,
        );
        let actions = ctx.take_actions();
        assert!(
            actions.iter().all(|(w, _)| *w == WorkerId(1)),
            "nothing may be placed on the dead worker: {actions:?}"
        );
        let reload = actions
            .iter()
            .find(|(_, a)| a.kind.type_name() == "LOAD")
            .expect("the re-homed model reloads from scratch");
        // A stale success from the dead worker's LOAD must not mark the
        // model loaded — only the new home's LOAD counts.
        s.on_result(
            Timestamp::from_millis(2),
            &success(&stale_load, 2),
            &mut ctx,
        );
        assert!(
            ctx.take_actions().is_empty(),
            "a stale LOAD result must not unblock dispatch"
        );
        let mut fresh = success(&reload.1, 9);
        fresh.worker = WorkerId(1);
        s.on_result(Timestamp::from_millis(9), &fresh, &mut ctx);
        let actions = ctx.take_actions();
        assert!(
            actions
                .iter()
                .any(|(w, a)| *w == WorkerId(1) && a.kind.type_name() == "INFER"),
            "the queued request is served from the new home: {actions:?}"
        );
    }

    #[test]
    fn unknown_model_is_rejected() {
        let mut s = scheduler();
        let mut ctx = SchedulerCtx::new();
        let r = InferenceRequest {
            id: RequestId(9),
            model: ModelId(42),
            arrival: Timestamp::ZERO,
            slo: Nanos::from_millis(10),
            tier: Tier::Strict,
        };
        s.on_request(Timestamp::ZERO, r, &mut ctx);
        let responses = ctx.take_responses();
        assert_eq!(responses.len(), 1);
        assert!(!responses[0].outcome.is_success());
        assert_eq!(s.name(), "clipper");
    }
}
