//! A sharded controller fleet over the Clockwork serving stack.
//!
//! Clockwork (OSDI '20) centralizes all decisions in one controller, and
//! §7 of the paper asks how far that design scales. This crate explores the
//! natural scale-out answer while keeping every determinism guarantee the
//! repo is built on: split the model population and the worker fleet into
//! `N` independent shards, each a full [`ServingSystem`](clockwork::ServingSystem)
//! with its own controller, and put a deterministic **front door** in
//! front that routes every request to the one shard owning its model.
//!
//! The pieces:
//!
//! - [`ShardAssignment`] / [`FrontDoorRouter`] — the total model → shard
//!   table (hash, load-aware bin-packing, or explicit), and the
//!   shard-stable trace partition it induces.
//! - [`ShardedSpec`] — a [`ScenarioSpec`](clockwork::ScenarioSpec) plus a
//!   shard count and assignment policy; [`ShardedSpec::shard_plans`]
//!   derives each shard's own scenario (its worker slice, its models, its
//!   slice of the trace in local ids, its slice of the fault plan).
//! - [`ShardedExperiment`] — runs one thread per shard to its horizon and
//!   merges the per-shard [`ShardRunStats`] into a [`FleetReport`] in
//!   shard order.
//!
//! Two invariants anchor the design:
//!
//! 1. **The 1-shard fleet is the monolith.** `shard_plans()` with `N = 1`
//!    is the identity partition, and the runner mirrors the monolithic
//!    experiment loop exactly, so the single shard's response digest is
//!    byte-identical to [`Experiment::run`](clockwork::Experiment::run) on
//!    the base spec. The sharded path is pinned to the unsharded oracle,
//!    not merely "close to" it.
//! 2. **Conservation survives the split.** The front door is total (every
//!    model owned by exactly one shard, checked at partition time), so
//!    `successes + rejected == total` summed over shards equals the same
//!    identity of the whole workload, and per-shard event conservation
//!    (`pushed == delivered + cancelled + live`) is checked shard by
//!    shard.
//!
//! Shards share nothing at runtime (no cross-shard interaction in v1), so
//! the threads never synchronize until the join and the merged report is
//! independent of thread scheduling: same spec, same seed, same fleet
//! digest — on one core or sixteen.

#![warn(missing_docs)]

mod router;
mod run;
mod spec;

pub use router::{FrontDoorRouter, ShardAssignment};
pub use run::{run_shard, FleetReport, ShardRunStats, ShardedExperiment};
pub use spec::{ShardPlan, ShardedSpec};
