//! The front door: a total model → shard routing table.
//!
//! Clockwork's centralized controller owns every model; a sharded fleet
//! splits the model population so each shard's controller owns a slice.
//! The front door is the piece in between: every request is routed to the
//! one shard that owns its model, so shards never interact. The table is
//! built once per experiment and is a pure function of the assignment
//! policy, the model count and (for the load-aware policy) the trace — the
//! same determinism contract every other component keeps.

use clockwork_model::ModelId;
use clockwork_workload::Trace;

/// FNV-1a offset basis — the same constants as the telemetry response
/// digest, so the routing hash and the fleet digest share one lineage.
const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
/// FNV-1a prime.
const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;

/// How the model population is split across shards.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum ShardAssignment {
    /// FNV-1a hash of the model id modulo the shard count — stateless and
    /// uniform in expectation, the production-style default.
    HashByModel,
    /// Greedy bin-packing by per-model request counts from the trace:
    /// models are placed heaviest-first onto the least-loaded shard, so a
    /// skewed popularity distribution still yields balanced shards.
    LoadAware,
    /// An explicit model → shard table (one entry per model). The escape
    /// hatch for experiments that pin the partition.
    Explicit(Vec<u32>),
}

/// The immutable routing table of one sharded experiment: every model id in
/// `0..models` maps to exactly one shard in `0..shards`.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct FrontDoorRouter {
    shards: u32,
    table: Vec<u32>,
}

impl FrontDoorRouter {
    /// Builds the table for `models` models over `shards` shards.
    ///
    /// `trace` feeds the load-aware policy its per-model request counts and
    /// is ignored by the other policies. Panics when `shards` is zero, when
    /// an explicit table has the wrong length or routes outside `0..shards`,
    /// or when [`ShardAssignment::LoadAware`] is built without a trace.
    pub fn build(
        assignment: &ShardAssignment,
        shards: u32,
        models: usize,
        trace: Option<&Trace>,
    ) -> Self {
        assert!(shards > 0, "a fleet needs at least one shard");
        let table = match assignment {
            ShardAssignment::HashByModel => {
                (0..models as u32).map(|m| hash_shard(m, shards)).collect()
            }
            ShardAssignment::LoadAware => {
                let trace = trace.expect("load-aware routing needs the trace for model weights");
                load_aware_table(trace, shards, models)
            }
            ShardAssignment::Explicit(table) => {
                assert_eq!(
                    table.len(),
                    models,
                    "explicit assignment must cover every model"
                );
                for (m, &s) in table.iter().enumerate() {
                    assert!(s < shards, "model {m} routed to shard {s} of {shards}");
                }
                table.clone()
            }
        };
        FrontDoorRouter { shards, table }
    }

    /// Number of shards the table routes into.
    pub fn shards(&self) -> u32 {
        self.shards
    }

    /// Number of models the table covers.
    pub fn models(&self) -> usize {
        self.table.len()
    }

    /// The owning shard of a model. Panics on models outside the table —
    /// the front door only ever sees registered models.
    pub fn shard_of(&self, model: ModelId) -> u32 {
        self.table[model.0 as usize]
    }

    /// The full model → shard table, indexed by model id.
    pub fn table(&self) -> &[u32] {
        &self.table
    }

    /// The global model ids a shard owns, ascending — the shard registers
    /// exactly these, in exactly this order, so global id `owned[i]`
    /// becomes local id `i`.
    pub fn owned_models(&self, shard: u32) -> Vec<ModelId> {
        self.table
            .iter()
            .enumerate()
            .filter(|&(_, &s)| s == shard)
            .map(|(m, _)| ModelId(m as u32))
            .collect()
    }

    /// Routes a trace through the front door: one sub-trace per shard, each
    /// a shard-stable, order-preserving subsequence of the input.
    pub fn route(&self, trace: &Trace) -> Vec<Trace> {
        trace.partitioned(self.shards as usize, |m| self.shard_of(m) as usize)
    }
}

/// FNV-1a over the model id's little-endian bytes, reduced mod `shards`.
fn hash_shard(model: u32, shards: u32) -> u32 {
    let mut h = FNV_OFFSET;
    for b in model.to_le_bytes() {
        h ^= u64::from(b);
        h = h.wrapping_mul(FNV_PRIME);
    }
    (h % u64::from(shards)) as u32
}

/// Greedy heaviest-first bin packing: count requests per model, place
/// models in descending count order (model id breaks ties) onto the
/// least-loaded shard (shard id breaks ties). Deterministic by
/// construction; models absent from the trace pack last with weight zero.
fn load_aware_table(trace: &Trace, shards: u32, models: usize) -> Vec<u32> {
    let mut counts = vec![0u64; models];
    for e in trace.events() {
        let m = e.model.0 as usize;
        assert!(
            m < models,
            "trace references model {m} beyond the population"
        );
        counts[m] += 1;
    }
    let mut order: Vec<usize> = (0..models).collect();
    order.sort_by_key(|&m| (std::cmp::Reverse(counts[m]), m));
    let mut load = vec![0u64; shards as usize];
    let mut table = vec![0u32; models];
    for m in order {
        let lightest = (0..shards).min_by_key(|&s| (load[s as usize], s)).unwrap();
        table[m] = lightest;
        load[lightest as usize] += counts[m];
    }
    table
}

#[cfg(test)]
mod tests {
    use super::*;
    use clockwork_model::Tier;
    use clockwork_sim::time::{Nanos, Timestamp};
    use clockwork_workload::TraceEvent;

    fn trace_with_counts(counts: &[u64]) -> Trace {
        let mut events = Vec::new();
        for (m, &n) in counts.iter().enumerate() {
            for i in 0..n {
                events.push(TraceEvent {
                    at: Timestamp::from_millis(i * 10 + m as u64),
                    model: ModelId(m as u32),
                    slo: Nanos::from_millis(100),
                    tier: Tier::Strict,
                });
            }
        }
        Trace::new(events)
    }

    #[test]
    fn hash_routing_is_total_deterministic_and_roughly_uniform() {
        let a = FrontDoorRouter::build(&ShardAssignment::HashByModel, 4, 400, None);
        let b = FrontDoorRouter::build(&ShardAssignment::HashByModel, 4, 400, None);
        assert_eq!(a, b, "a pure function of (models, shards)");
        assert!(a.table().iter().all(|&s| s < 4));
        let mut owned_total = 0;
        for s in 0..4 {
            let owned = a.owned_models(s);
            owned_total += owned.len();
            assert!(
                owned.len() > 50,
                "shard {s} owns {} of 400 — hash badly skewed",
                owned.len()
            );
            assert!(owned.windows(2).all(|w| w[0] < w[1]), "ascending order");
        }
        assert_eq!(owned_total, 400, "every model owned exactly once");
    }

    #[test]
    fn one_shard_owns_everything() {
        let router = FrontDoorRouter::build(&ShardAssignment::HashByModel, 1, 20, None);
        assert_eq!(router.owned_models(0).len(), 20);
        let trace = trace_with_counts(&[3, 2, 1]);
        let router = FrontDoorRouter::build(&ShardAssignment::HashByModel, 1, 3, None);
        let parts = router.route(&trace);
        assert_eq!(parts.len(), 1);
        assert_eq!(parts[0], trace, "the 1-shard front door is the identity");
    }

    #[test]
    fn load_aware_balances_a_skewed_population() {
        // One hot model with 90 requests, nine cold ones with 10 each: hash
        // routing could land several cold models with the hot one; the
        // load-aware packer must put the hot model alone-ish.
        let counts = [90, 10, 10, 10, 10, 10, 10, 10, 10, 10];
        let trace = trace_with_counts(&counts);
        let router =
            FrontDoorRouter::build(&ShardAssignment::LoadAware, 2, counts.len(), Some(&trace));
        let shard_load = |s: u32| -> u64 {
            router
                .owned_models(s)
                .iter()
                .map(|m| counts[m.0 as usize])
                .sum()
        };
        let (a, b) = (shard_load(0), shard_load(1));
        assert_eq!(a + b, 180);
        assert!(a.abs_diff(b) <= 20, "loads {a} vs {b} should be near-even");
        // Deterministic: same inputs, same table.
        let again =
            FrontDoorRouter::build(&ShardAssignment::LoadAware, 2, counts.len(), Some(&trace));
        assert_eq!(router, again);
    }

    #[test]
    fn explicit_tables_are_validated() {
        let router = FrontDoorRouter::build(&ShardAssignment::Explicit(vec![1, 0, 1]), 2, 3, None);
        assert_eq!(router.shard_of(ModelId(0)), 1);
        assert_eq!(router.owned_models(0), vec![ModelId(1)]);
    }

    #[test]
    #[should_panic(expected = "routed to shard")]
    fn explicit_tables_must_stay_in_range() {
        let _ = FrontDoorRouter::build(&ShardAssignment::Explicit(vec![0, 5]), 2, 2, None);
    }

    #[test]
    #[should_panic(expected = "cover every model")]
    fn explicit_tables_must_cover_the_population() {
        let _ = FrontDoorRouter::build(&ShardAssignment::Explicit(vec![0]), 2, 2, None);
    }

    #[test]
    fn routing_a_trace_loses_nothing() {
        let trace = trace_with_counts(&[5, 4, 3, 2, 1, 6, 7, 8]);
        let router = FrontDoorRouter::build(&ShardAssignment::HashByModel, 3, 8, None);
        let parts = router.route(&trace);
        assert_eq!(parts.iter().map(Trace::len).sum::<usize>(), trace.len());
        for (s, part) in parts.iter().enumerate() {
            for e in part.events() {
                assert_eq!(router.shard_of(e.model) as usize, s);
            }
        }
    }
}
