//! The parallel runner: one OS thread per shard, a deterministic merge.
//!
//! Each shard is a complete [`ServingSystem`] simulated to its horizon on
//! its own `std::thread` — shards share nothing at runtime (v1 has no
//! cross-shard interaction), so the threads never synchronize until the
//! join. Every thread returns only plain data ([`ShardRunStats`]); the
//! merge into a [`FleetReport`] happens on the calling thread in shard
//! order, so the fleet digest and all aggregates are independent of thread
//! scheduling — the whole run stays deterministic while the wall clock
//! shrinks with cores.

use std::time::Instant;

use clockwork::scenario::ModelSet;
use clockwork::telemetry::{EventMix, ExperimentMetrics};
use clockwork::ServingSystem;
use clockwork_controller::registry::SchedulerFactory;
use clockwork_controller::SchedProfile;
use clockwork_model::zoo::ModelZoo;

use crate::spec::{ShardPlan, ShardedSpec};

/// FNV-1a offset basis (see the router for the shared constants note).
const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
/// FNV-1a prime.
const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;

/// A sharded scenario bound to the runner that executes it — the fleet
/// counterpart of [`Experiment`](clockwork::Experiment).
pub struct ShardedExperiment {
    spec: ShardedSpec,
}

impl ShardedExperiment {
    /// Wraps a sharded spec.
    pub fn new(spec: ShardedSpec) -> Self {
        ShardedExperiment { spec }
    }

    /// The spec this experiment runs.
    pub fn spec(&self) -> &ShardedSpec {
        &self.spec
    }

    /// Runs every shard to its horizon, one thread per shard, and merges
    /// the results in shard order.
    ///
    /// The factory is shared by reference across the shard threads (hence
    /// `Sync`); each thread builds its own scheduler from it, so factories
    /// stay what they already are everywhere else — plain configuration.
    pub fn run<F: SchedulerFactory + Sync>(&self, factory: &F) -> FleetReport {
        let plans = self.spec.shard_plans();
        let started = Instant::now();
        let shards: Vec<ShardRunStats> = std::thread::scope(|scope| {
            let handles: Vec<_> = plans
                .iter()
                .map(|plan| scope.spawn(move || run_shard(plan, factory)))
                .collect();
            // Joining in spawn (= shard) order keeps the merge deterministic.
            handles
                .into_iter()
                .map(|h| h.join().expect("shard simulation thread panicked"))
                .collect()
        });
        FleetReport {
            discipline: factory.name().to_string(),
            shards,
            wall_secs: started.elapsed().as_secs_f64(),
        }
    }
}

/// Runs one shard's scenario to completion and extracts its stats. Mirrors
/// the monolithic experiment loop exactly — build, register the owned
/// models in ascending global order, submit the pre-partitioned trace,
/// drive to the horizon — which is what makes the 1-shard run
/// byte-identical to the unsharded oracle.
pub fn run_shard(plan: &ShardPlan, factory: &dyn SchedulerFactory) -> ShardRunStats {
    let mut system = ServingSystem::with_factory(plan.spec.system_config(), factory);
    let zoo = ModelZoo::new();
    match plan.spec.model_set {
        ModelSet::ZooCycle => {
            let varieties = zoo.all();
            for &global in &plan.owned {
                system.register_model(&varieties[global as usize % varieties.len()]);
            }
        }
        ModelSet::Resnet50Copies => {
            for _ in &plan.owned {
                system.register_model(zoo.resnet50());
            }
        }
    }
    let submitted = plan.trace.len() as u64;
    system.submit_trace(&plan.trace);
    let started = Instant::now();
    system.run_until_events(plan.spec.horizon(), u64::MAX);
    let wall_secs = started.elapsed().as_secs_f64();
    let telemetry = system.telemetry();
    ShardRunStats {
        shard: plan.shard,
        workers: plan.spec.workers,
        models: plan.owned.len(),
        submitted,
        digest: telemetry.response_digest(),
        events_processed: system.events_processed(),
        live_events: system.pending_events(),
        wall_secs,
        metrics: telemetry.metrics(),
        mix: telemetry.event_mix().clone(),
        sched: system.sched_profile(),
    }
}

/// Everything one finished shard reports — plain data only, so it crosses
/// the thread join untouched.
#[derive(Clone, Debug)]
pub struct ShardRunStats {
    /// Shard index.
    pub shard: u32,
    /// Workers this shard owned.
    pub workers: u32,
    /// Models this shard owned.
    pub models: usize,
    /// Requests routed to this shard.
    pub submitted: u64,
    /// The shard's order-sensitive FNV-1a response digest.
    pub digest: u64,
    /// Simulation events the shard delivered.
    pub events_processed: u64,
    /// Events still scheduled when the shard stopped.
    pub live_events: u64,
    /// Host wall-clock seconds of this shard's simulation alone.
    pub wall_secs: f64,
    /// The shard's aggregate serving metrics.
    pub metrics: ExperimentMetrics,
    /// The shard's per-kind event accounting.
    pub mix: EventMix,
    /// The shard's scheduler self-profiling counters.
    pub sched: SchedProfile,
}

impl ShardRunStats {
    /// Total up-front rejections across all reject reasons.
    pub fn rejected(&self) -> u64 {
        self.metrics.rejections.values().sum()
    }

    /// Whether this shard ran out of work before stopping.
    pub fn drained(&self) -> bool {
        self.live_events == 0
    }

    /// The per-shard exactly-once identity `successes + rejected == total`.
    pub fn identity_ok(&self) -> bool {
        self.metrics.successes + self.rejected() == self.metrics.total_requests
    }

    /// The per-shard event conservation identity
    /// `pushed == delivered + cancelled + live`.
    pub fn mix_conserved(&self) -> bool {
        self.mix.pushed() == self.mix.delivered() + self.mix.cancelled() + self.live_events
    }
}

/// The merged outcome of a sharded run: per-shard stats in shard order plus
/// the fleet-level aggregates and invariant checks the bench harness gates
/// on.
#[derive(Clone, Debug)]
pub struct FleetReport {
    /// Name of the discipline every shard ran.
    pub discipline: String,
    /// Per-shard stats, indexed by shard.
    pub shards: Vec<ShardRunStats>,
    /// Host wall-clock seconds for the whole fleet (all shards in
    /// parallel), spawn to last join.
    pub wall_secs: f64,
}

impl FleetReport {
    /// The fleet determinism fingerprint: FNV-1a folded over the per-shard
    /// digests in shard order. Stable across reruns and across thread
    /// scheduling; any shard diverging moves it.
    pub fn fleet_digest(&self) -> u64 {
        let mut h = FNV_OFFSET;
        for s in &self.shards {
            for b in s.digest.to_le_bytes() {
                h ^= u64::from(b);
                h = h.wrapping_mul(FNV_PRIME);
            }
        }
        h
    }

    /// Requests routed across all shards.
    pub fn submitted(&self) -> u64 {
        self.shards.iter().map(|s| s.submitted).sum()
    }

    /// Requests that arrived at any shard's controller.
    pub fn total_requests(&self) -> u64 {
        self.shards.iter().map(|s| s.metrics.total_requests).sum()
    }

    /// Successful inferences across the fleet.
    pub fn successes(&self) -> u64 {
        self.shards.iter().map(|s| s.metrics.successes).sum()
    }

    /// Rejections across the fleet, all reasons.
    pub fn rejected(&self) -> u64 {
        self.shards.iter().map(ShardRunStats::rejected).sum()
    }

    /// SLO-met responses across the fleet.
    pub fn goodput(&self) -> u64 {
        self.shards.iter().map(|s| s.metrics.goodput).sum()
    }

    /// Simulation events delivered across the fleet.
    pub fn events_processed(&self) -> u64 {
        self.shards.iter().map(|s| s.events_processed).sum()
    }

    /// Events still scheduled anywhere when the run stopped.
    pub fn live_events(&self) -> u64 {
        self.shards.iter().map(|s| s.live_events).sum()
    }

    /// Whether every shard ran out of work.
    pub fn drained(&self) -> bool {
        self.shards.iter().all(ShardRunStats::drained)
    }

    /// The global exactly-once identity
    /// `successes + rejected == total` summed across shards. Only
    /// meaningful when [`FleetReport::drained`].
    pub fn identity_ok(&self) -> bool {
        self.successes() + self.rejected() == self.total_requests()
    }

    /// Whether any shard recorded more responses than requests — a
    /// violation even for interrupted runs.
    pub fn overdelivered(&self) -> bool {
        self.shards
            .iter()
            .any(|s| s.metrics.successes + s.rejected() > s.metrics.total_requests)
    }

    /// Whether event conservation holds on every shard individually.
    pub fn mix_conserved(&self) -> bool {
        self.shards.iter().all(ShardRunStats::mix_conserved)
    }

    /// The slowest single shard's simulation time — the fleet's critical
    /// path when every shard has its own core.
    pub fn max_shard_wall(&self) -> f64 {
        self.shards.iter().map(|s| s.wall_secs).fold(0.0, f64::max)
    }

    /// Total simulation work across shards — what one core pays to run the
    /// fleet serially.
    pub fn sum_shard_wall(&self) -> f64 {
        self.shards.iter().map(|s| s.wall_secs).sum()
    }

    /// Merges the per-shard metrics into one fleet-level
    /// [`ExperimentMetrics`]: counters sum, rejection maps merge,
    /// latency histograms merge bucket-wise, the mean batch is weighted by
    /// successes and the horizon is the latest shard's.
    pub fn merged_metrics(&self) -> ExperimentMetrics {
        let mut shards = self.shards.iter();
        let first = shards.next().expect("a fleet has at least one shard");
        let mut merged = first.metrics.clone();
        let mut batch_weight = first.metrics.mean_batch * first.metrics.successes as f64;
        for s in shards {
            let m = &s.metrics;
            merged.total_requests += m.total_requests;
            merged.successes += m.successes;
            merged.goodput += m.goodput;
            for (reason, count) in &m.rejections {
                *merged.rejections.entry(reason).or_insert(0) += count;
            }
            merged.latency.merge(&m.latency);
            merged.goodput_latency.merge(&m.goodput_latency);
            batch_weight += m.mean_batch * m.successes as f64;
            merged.cold_starts += m.cold_starts;
            merged.horizon = merged.horizon.max(m.horizon);
            for (tier, other) in merged.tiers.iter_mut().zip(&m.tiers) {
                tier.submitted += other.submitted;
                tier.successes += other.successes;
                tier.goodput += other.goodput;
                tier.rejected += other.rejected;
                tier.shed += other.shed;
            }
        }
        merged.mean_batch = if merged.successes > 0 {
            batch_weight / merged.successes as f64
        } else {
            0.0
        };
        merged
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::router::ShardAssignment;
    use clockwork::prelude::{ClockworkFactory, Experiment, ScenarioSpec};

    fn sharded(shards: u32) -> ShardedExperiment {
        ShardedExperiment::new(ShardedSpec::new(
            ScenarioSpec::smoke(5).with_duration_secs(3),
            shards,
            ShardAssignment::HashByModel,
        ))
    }

    #[test]
    fn one_shard_matches_the_monolithic_run_byte_for_byte() {
        let fleet = sharded(1).run(&ClockworkFactory::default());
        let spec = ScenarioSpec::smoke(5).with_duration_secs(3);
        let oracle = Experiment::new(spec).run(&ClockworkFactory::default());
        assert_eq!(fleet.shards.len(), 1);
        assert_eq!(fleet.shards[0].digest, oracle.digest(), "digest oracle");
        assert_eq!(fleet.total_requests(), oracle.metrics().total_requests);
        assert_eq!(fleet.successes(), oracle.metrics().successes);
        assert_eq!(fleet.goodput(), oracle.metrics().goodput);
        assert_eq!(fleet.events_processed(), oracle.events_processed());
    }

    #[test]
    fn parallel_shards_conserve_and_merge_deterministically() {
        let experiment = sharded(2);
        let a = experiment.run(&ClockworkFactory::default());
        assert_eq!(a.shards.len(), 2);
        assert_eq!(
            a.submitted(),
            a.total_requests(),
            "front door loses nothing"
        );
        assert!(a.drained());
        assert!(a.identity_ok(), "successes + rejected == total globally");
        assert!(!a.overdelivered());
        assert!(a.mix_conserved(), "event conservation per shard");
        let b = experiment.run(&ClockworkFactory::default());
        assert_eq!(a.fleet_digest(), b.fleet_digest(), "deterministic merge");

        let merged = a.merged_metrics();
        assert_eq!(merged.total_requests, a.total_requests());
        assert_eq!(merged.goodput, a.goodput());
        assert_eq!(
            merged.latency.count(),
            a.shards
                .iter()
                .map(|s| s.metrics.latency.count())
                .sum::<u64>()
        );
    }

    #[test]
    fn fleet_digest_is_order_sensitive() {
        let fleet = sharded(2).run(&ClockworkFactory::default());
        let mut swapped = fleet.clone();
        swapped.shards.swap(0, 1);
        if fleet.shards[0].digest != fleet.shards[1].digest {
            assert_ne!(
                fleet.fleet_digest(),
                swapped.fleet_digest(),
                "the fold is order-sensitive"
            );
        }
    }
}
