//! Sharded scenarios: a [`ScenarioSpec`] plus a partition of its fleet.
//!
//! A [`ShardedSpec`] deterministically splits one scenario into `shards`
//! independent scenarios: the model population is divided by the front-door
//! [`FrontDoorRouter`], the workers by contiguous index ranges, the trace by
//! model ownership and the fault plan by the worker each fault targets. The
//! derivation is pure — same spec, same shard plans — and the 1-shard
//! partition reproduces the unsharded scenario exactly, which is what lets
//! the equivalence tests hold the sharded runner to byte-identical digests
//! against the monolithic oracle.

use std::collections::BTreeMap;
use std::ops::Range;

use clockwork::scenario::{ScenarioSpec, WorkloadSpec};
use clockwork_faults::{FaultKind, FaultPlan};
use clockwork_model::ModelId;
use clockwork_sim::time::{Nanos, Timestamp};
use clockwork_workload::Trace;

use crate::router::{FrontDoorRouter, ShardAssignment};

/// A scenario split across a controller fleet.
#[derive(Clone, Debug, PartialEq)]
pub struct ShardedSpec {
    /// The unsharded scenario being partitioned: total fleet size, total
    /// model population, the workload, the fault plan, the seeds.
    pub base: ScenarioSpec,
    /// Number of independent shards.
    pub shards: u32,
    /// How models map to shards.
    pub assignment: ShardAssignment,
}

/// Everything one shard needs to run: its own [`ScenarioSpec`] (its worker
/// slice, its model count, its slice of the fault plan), the global ids of
/// the models it owns, and its slice of the trace in local model ids.
#[derive(Clone, Debug)]
pub struct ShardPlan {
    /// Shard index in `0..shards`.
    pub shard: u32,
    /// The local scenario: `workers` is the slice size, `models` the owned
    /// count, `faults` the remapped slice of the base plan.
    pub spec: ScenarioSpec,
    /// Global model ids this shard owns, ascending; global id `owned[i]`
    /// is local id `i`.
    pub owned: Vec<u32>,
    /// The shard's slice of the workload, in local model ids.
    pub trace: Trace,
}

impl ShardedSpec {
    /// Wraps a scenario for sharded execution. Panics on zero shards.
    pub fn new(base: ScenarioSpec, shards: u32, assignment: ShardAssignment) -> Self {
        assert!(shards > 0, "a fleet needs at least one shard");
        ShardedSpec {
            base,
            shards,
            assignment,
        }
    }

    /// The shard-fleet scenario: the fleet-scale preset scaled an order of
    /// magnitude up — 200 workers × 4 GPUs, 2 000 zoo models, the
    /// Azure-derived trace at 15 000 r/s over 8 000 functions for 30
    /// virtual seconds — the population a single controller simulation
    /// struggles with and a sharded fleet splits cleanly.
    pub fn shard_fleet(shards: u32) -> Self {
        let mut base = ScenarioSpec::fleet_scale().named("shard_fleet");
        base.workers = 200;
        base.models = 2_000;
        base.workload = WorkloadSpec::Azure {
            functions: 8_000,
            target_rate: 15_000.0,
        };
        base.duration_secs = 30;
        ShardedSpec::new(base, shards, ShardAssignment::HashByModel)
    }

    /// The contiguous worker slice a shard owns:
    /// `floor(s·W/N) .. floor((s+1)·W/N)` — every worker owned by exactly
    /// one shard, sizes differing by at most one.
    pub fn worker_range(&self, shard: u32) -> Range<u32> {
        let w = u64::from(self.base.workers);
        let n = u64::from(self.shards);
        let s = u64::from(shard);
        ((s * w / n) as u32)..(((s + 1) * w / n) as u32)
    }

    /// Overlays a correlated rack failure covering a shard's *entire*
    /// worker slice: the whole rack crashes as one at 30 % of the run,
    /// restarts 20 % later and resyncs over a 4× degraded shared uplink —
    /// [`FaultPlan::rack_failure`] aimed at one shard, so the fleet-level
    /// question "does global accounting survive losing a whole shard's
    /// rack?" is one builder call.
    pub fn with_rack_outage(mut self, shard: u32) -> Self {
        assert!(shard < self.shards, "shard {shard} of {}", self.shards);
        let span = self.base.duration_secs as f64 * 1e9;
        let at = Timestamp::from_nanos((0.30 * span) as u64);
        let downtime = Nanos::from_nanos((0.20 * span) as u64);
        let rack: Vec<u32> = self.worker_range(shard).collect();
        self.base.faults =
            std::mem::take(&mut self.base.faults).rack_failure(at, &rack, 4.0, downtime);
        self
    }

    /// Builds the front-door routing table for this spec. The load-aware
    /// policy generates the base trace to weigh models; the other policies
    /// need no trace.
    pub fn router(&self) -> FrontDoorRouter {
        let trace = match self.assignment {
            ShardAssignment::LoadAware => Some(self.pre_generated_trace()),
            _ => None,
        };
        FrontDoorRouter::build(
            &self.assignment,
            self.shards,
            self.base.models,
            trace.as_ref(),
        )
    }

    /// Derives the per-shard scenarios: model slices from the router,
    /// worker slices from [`ShardedSpec::worker_range`], trace slices in
    /// local model ids, and the fault plan split by target worker.
    ///
    /// With one shard the derivation is the identity: the plan's spec has
    /// the base's cluster and fault plan and its trace is the base trace,
    /// so the sharded runner reproduces the monolithic run byte for byte.
    pub fn shard_plans(&self) -> Vec<ShardPlan> {
        let trace = self.pre_generated_trace();
        let router = FrontDoorRouter::build(
            &self.assignment,
            self.shards,
            self.base.models,
            Some(&trace),
        );
        let parts = router.route(&trace);
        let fault_parts = self.partition_faults();

        (0..self.shards)
            .zip(parts)
            .map(|(shard, part)| {
                let owned: Vec<u32> = router.owned_models(shard).iter().map(|m| m.0).collect();
                let local_trace = part.with_models_mapped(|m| {
                    let local = owned
                        .binary_search(&m.0)
                        .expect("routed event's model is owned by its shard");
                    ModelId(local as u32)
                });
                let range = self.worker_range(shard);
                let mut spec = self.base.clone();
                spec.name = format!("{}/shard{shard}", self.base.name);
                spec.workers = range.end - range.start;
                spec.models = owned.len();
                spec.faults = fault_parts[shard as usize].clone();
                ShardPlan {
                    shard,
                    spec,
                    owned,
                    trace: local_trace,
                }
            })
            .collect()
    }

    /// The base trace, which sharding requires up front: open- and
    /// closed-loop workloads generate interactively inside the run and
    /// cannot be split by the front door, so they panic here.
    fn pre_generated_trace(&self) -> Trace {
        self.base.generated_trace().unwrap_or_else(|| {
            panic!(
                "sharding requires a pre-generated workload (Azure or Shaped); \
                 {:?} generates requests inside the run",
                self.base.workload
            )
        })
    }

    /// The owning shard of a base-fleet worker index.
    fn shard_of_worker(&self, worker: u32) -> u32 {
        debug_assert!(worker < self.base.workers);
        (0..self.shards)
            .find(|&s| self.worker_range(s).contains(&worker))
            .expect("worker ranges cover the fleet")
    }

    /// Splits the base fault plan by target worker, remapping global worker
    /// indices to shard-local ones. Workers joining beyond the base fleet
    /// round-robin across shards and take the next local index there;
    /// later faults referencing a joined worker follow it to its shard. A
    /// fault naming a worker no shard knows (never joined) is dropped —
    /// the same tolerance the engine itself applies to unknown targets.
    fn partition_faults(&self) -> Vec<FaultPlan> {
        let mut plans = vec![FaultPlan::new(); self.shards as usize];
        let mut next_local: Vec<u32> = (0..self.shards)
            .map(|s| {
                let r = self.worker_range(s);
                r.end - r.start
            })
            .collect();
        let mut joined: BTreeMap<u32, (u32, u32)> = BTreeMap::new();
        for e in self.base.faults.events() {
            let w = e.kind.worker();
            let placed = if w < self.base.workers {
                let s = self.shard_of_worker(w);
                Some((s, w - self.worker_range(s).start))
            } else if matches!(e.kind, FaultKind::WorkerJoin { .. }) {
                let s = w % self.shards;
                let local = next_local[s as usize];
                next_local[s as usize] += 1;
                joined.insert(w, (s, local));
                Some((s, local))
            } else {
                joined.get(&w).copied()
            };
            if let Some((shard, local)) = placed {
                plans[shard as usize].push(e.at, with_worker(e.kind, local));
            }
        }
        plans
    }
}

/// The same fault kind aimed at a different worker index.
fn with_worker(kind: FaultKind, worker: u32) -> FaultKind {
    match kind {
        FaultKind::GpuFail { gpu, .. } => FaultKind::GpuFail { worker, gpu },
        FaultKind::GpuRecover { gpu, .. } => FaultKind::GpuRecover { worker, gpu },
        FaultKind::WorkerCrash { .. } => FaultKind::WorkerCrash { worker },
        FaultKind::WorkerRestart { .. } => FaultKind::WorkerRestart { worker },
        FaultKind::LinkDegrade { factor_milli, .. } => FaultKind::LinkDegrade {
            worker,
            factor_milli,
        },
        FaultKind::LinkRestore { .. } => FaultKind::LinkRestore { worker },
        FaultKind::PartitionStart { .. } => FaultKind::PartitionStart { worker },
        FaultKind::PartitionEnd { .. } => FaultKind::PartitionEnd { worker },
        FaultKind::WorkerJoin { .. } => FaultKind::WorkerJoin { worker },
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sharded(shards: u32) -> ShardedSpec {
        ShardedSpec::new(ScenarioSpec::smoke(7), shards, ShardAssignment::HashByModel)
    }

    #[test]
    fn one_shard_plans_reproduce_the_base_scenario() {
        let spec = sharded(1);
        let plans = spec.shard_plans();
        assert_eq!(plans.len(), 1);
        let plan = &plans[0];
        assert_eq!(plan.spec.workers, spec.base.workers);
        assert_eq!(plan.spec.models, spec.base.models);
        assert_eq!(plan.spec.faults, spec.base.faults);
        assert_eq!(plan.owned, (0..spec.base.models as u32).collect::<Vec<_>>());
        assert_eq!(
            plan.trace,
            spec.base.generated_trace().unwrap(),
            "identity remap leaves the trace byte-identical"
        );
    }

    #[test]
    fn worker_ranges_tile_the_fleet() {
        for shards in [1, 2, 3, 4, 7, 8] {
            let mut spec = sharded(shards);
            spec.base.workers = 10;
            let mut covered = Vec::new();
            for s in 0..shards {
                covered.extend(spec.worker_range(s));
            }
            assert_eq!(covered, (0..10).collect::<Vec<_>>(), "{shards} shards");
        }
    }

    #[test]
    fn shard_plans_partition_models_workers_and_trace() {
        let spec = sharded(4);
        let plans = spec.shard_plans();
        assert_eq!(plans.len(), 4);
        let base_trace = spec.base.generated_trace().unwrap();
        assert_eq!(
            plans.iter().map(|p| p.trace.len()).sum::<usize>(),
            base_trace.len()
        );
        assert_eq!(
            plans.iter().map(|p| p.owned.len()).sum::<usize>(),
            spec.base.models
        );
        assert_eq!(
            plans.iter().map(|p| p.spec.workers).sum::<u32>(),
            spec.base.workers
        );
        for plan in &plans {
            // Local ids are dense: every event references a registered model.
            for e in plan.trace.events() {
                assert!((e.model.0 as usize) < plan.owned.len());
            }
        }
    }

    #[test]
    fn fault_partition_remaps_workers_and_follows_joins() {
        let mut spec = sharded(2);
        spec.base.workers = 4; // shard 0 owns {0,1}, shard 1 owns {2,3}
        spec.base.faults = FaultPlan::new()
            .crash_worker_for(Timestamp::from_secs(1), 3, Nanos::from_secs(1))
            .join_worker(Timestamp::from_secs(2), 4)
            .join_worker(Timestamp::from_secs(3), 5)
            .crash_worker_for(Timestamp::from_secs(4), 5, Nanos::from_secs(1))
            .fail_gpu_for(Timestamp::from_secs(5), 0, 1, Nanos::from_secs(1));
        let plans = spec.shard_plans();
        let p0 = &plans[0].spec.faults;
        let p1 = &plans[1].spec.faults;
        // Worker 3 is shard 1's local worker 1; the crash and restart move.
        assert_eq!(
            p1.worker_crashes(),
            2,
            "original crash plus joined-worker crash"
        );
        assert!(p1
            .events()
            .iter()
            .any(|e| matches!(e.kind, FaultKind::WorkerCrash { worker: 1 })));
        // Join of global worker 4 lands on shard 4 % 2 == 0 at local index 2.
        assert!(p0
            .events()
            .iter()
            .any(|e| matches!(e.kind, FaultKind::WorkerJoin { worker: 2 })));
        // Join of global 5 lands on shard 1 at local 2; its later crash follows.
        assert!(p1
            .events()
            .iter()
            .any(|e| matches!(e.kind, FaultKind::WorkerJoin { worker: 2 })));
        assert!(p1
            .events()
            .iter()
            .any(|e| matches!(e.kind, FaultKind::WorkerCrash { worker: 2 })));
        // The GPU failure on worker 0 stays local to shard 0.
        assert!(p0
            .events()
            .iter()
            .any(|e| matches!(e.kind, FaultKind::GpuFail { worker: 0, gpu: 1 })));
        // Nothing silently vanished: every base event except none was placed.
        assert_eq!(p0.len() + p1.len(), spec.base.faults.len());
    }

    #[test]
    fn rack_outage_covers_exactly_one_shards_slice() {
        let spec = sharded(2).with_rack_outage(1);
        let rack: Vec<u32> = spec.worker_range(1).collect();
        assert_eq!(spec.base.faults.worker_crashes(), rack.len());
        let plans = spec.shard_plans();
        assert!(plans[0].spec.faults.is_empty(), "shard 0 untouched");
        assert_eq!(
            plans[1].spec.faults.worker_crashes(),
            rack.len(),
            "the whole slice dies on shard 1"
        );
    }

    #[test]
    fn shard_fleet_preset_scales_the_fleet_preset_up() {
        let spec = ShardedSpec::shard_fleet(4);
        assert_eq!(spec.base.name, "shard_fleet");
        assert_eq!(spec.base.workers, 200);
        assert_eq!(spec.base.models, 2_000);
        assert_eq!(spec.shards, 4);
        match spec.base.workload {
            WorkloadSpec::Azure { target_rate, .. } => assert_eq!(target_rate, 15_000.0),
            ref other => panic!("unexpected workload {other:?}"),
        }
    }

    #[test]
    #[should_panic(expected = "pre-generated workload")]
    fn interactive_workloads_cannot_be_sharded() {
        let mut spec = sharded(2);
        spec.base.workload = WorkloadSpec::ClosedLoop { concurrency: 4 };
        let _ = spec.shard_plans();
    }
}
